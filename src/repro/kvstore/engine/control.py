"""The control-plane engine: incremental key-range drains and autoscaling.

:class:`ControlPlaneEngine` is the fourth sans-I/O engine of the kvstore
core.  It owns the authoritative :class:`~repro.kvstore.sharding.ShardMap`
and turns ``resize()``/``move_shard()`` metadata flips into a *frame-based*
data migration: instead of transplanting every register object in one
synchronous critical section (the old single-process drain), it speaks the
``drain-*`` frame family of :mod:`repro.messages` to the group-server
replicas and moves one key **range** at a time.  Client ops on keys outside
the range in flight keep completing throughout, so the cutover pause a
migration imposes on the cluster is bounded by ``drain_range_size``, not by
shard size.

One migration runs through five stages, advancing whenever the outstanding
acks of the current stage are all in (or given up on):

1. **fencing** -- every donor replica gets a ``drain-fence`` carrying the
   post-flip epoch; its ack returns the replica's key census.  Once fenced,
   no request can create or mutate a donor register, so the census is
   complete.
2. **hosting** -- the censuses are routed through the *plan's* ring to find
   each moved key's new owner; every receiver replica gets a ``drain-host``
   listing its incoming keys, which it marks *pending* (requests for them
   bounce like a stale epoch until their range installs -- this is what
   keeps a fresh empty register from ever shadowing live donor state).
3. **draining** -- the moved keys are chunked into sorted ranges of
   ``drain_range_size``; ranges run sequentially, but within a range all
   replica indexes run in parallel: ``drain-transfer`` exports copies of
   the range's register state from donor replica *i*, then ``drain-install``
   delivers them to receiver replica *i*.  Index pairing preserves "value
   on >= S-t replicas" and with it every quorum-intersection argument.  A
   dead donor replica's paired receiver instead absorbs the merged blobs of
   all live donors (counts only grow, so the bound still holds); a dead
   receiver replica is skipped (it is one of the t faults the quorum
   already tolerates).
4. **completing** -- donors drop (growth) or evict (shrink/move) the moved
   registers; receivers clear their pending/installed bookkeeping.
5. **done** -- the :class:`~repro.kvstore.migration.MigrationReport` gets
   its final counters and its ``on_done`` callbacks fire.

Metadata flips *synchronously* at ``start_resize``/``start_move`` (callers
immediately see the new shard set, and view pushes go out in the returned
effects), but the drains themselves are **serialized**: a rebalance
requested while another is draining queues behind it.  Serialization is
what lets each drain trust its own census -- the next migration's fences
see everything the previous one installed.

The engine also embeds the metrics-driven **autoscaler**: the adapter feeds
per-shard served-op counts into :meth:`record_op` (e.g. from ``sub.served``
trace events) and arms the ``("autoscale",)`` timer; each tick folds the
counts per group and, when the hottest group's load exceeds
``autoscale_ratio`` times the mean, moves that group's hottest shard to the
coldest group -- chasing a moving hotspot with ordinary ``start_move``
migrations.

Like every engine here it is pure: frames and timer fires in, effects out,
no transport, runtime, or clock anywhere.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ...messages import (
    DRAIN_ACK_KIND,
    DRAIN_FENCE_ACK_KIND,
    DRAIN_TRANSFER_ACK_KIND,
    VIEW_PUSH_ACK_KIND,
    Message,
    make_drain_complete,
    make_drain_fence,
    make_drain_host,
    make_drain_install,
    make_drain_transfer,
)
from ...observe.events import (
    AUTOSCALE_ACTION,
    DRAIN_COMPLETED,
    DRAIN_RANGE_CLOSED,
    DRAIN_RANGE_OPENED,
    DRAIN_STARTED,
    FRAME_RECEIVED,
    FRAME_SENT,
    NULL_OBSERVER,
    SUB_SERVED,
    EngineObserver,
    TraceEvent,
)
from ..migration import MigrationReport
from ..placement import pick_coldest_group
from ..sharding import HashRing, ResizePlan, ShardMap
from .effects import CancelTimer, Effect, SendFrame, StartTimer, TimerId
from .routing import CONTROL_PLANE, view_push_frames

__all__ = [
    "DRAIN_RANGE_SIZE",
    "DRAIN_RETRY_DELAY",
    "DRAIN_MAX_RETRIES",
    "AUTOSCALE_INTERVAL",
    "AUTOSCALE_RATIO",
    "AUTOSCALE_MIN_OPS",
    "AutoscaleFeed",
    "ControlPlaneEngine",
]

#: Keys per drained range.  The knob that trades migration duration (more
#: ranges, more round trips) against the per-range cutover pause (bigger
#: transfer/install frames occupy a replica for longer).
DRAIN_RANGE_SIZE = 64

#: How long to wait for a drain ack before resending, and how many resends
#: before declaring the replica dead for this migration.  In the adapter's
#: time unit -- each backend passes its own.
DRAIN_RETRY_DELAY = 0.2
DRAIN_MAX_RETRIES = 5

#: Autoscaler defaults: fold served-op counts every ``interval``, act when
#: the hottest group carries more than ``ratio`` times the mean group load,
#: and never act on fewer than ``min_ops`` ops per window (a quiet cluster
#: is never "imbalanced").
AUTOSCALE_INTERVAL = 100.0
AUTOSCALE_RATIO = 1.5
AUTOSCALE_MIN_OPS = 50


class AutoscaleFeed:
    """An observer sink piping served-op counts into the autoscaler.

    Every ``sub.served`` trace event carries the shard that served it; the
    control engine folds them per group at each autoscale tick.  Both
    backends subscribe one of these to their observer hub -- the PR-6
    metrics stream feeding the control plane, with no new plumbing.
    """

    def __init__(self, engine: "ControlPlaneEngine") -> None:
        self.engine = engine

    def handle(self, event: TraceEvent) -> None:
        if event.kind == SUB_SERVED:
            shard = event.attrs.get("shard")
            if shard is not None:
                self.engine.record_op(shard)


@dataclass
class _Range:
    """One drained key range: a chunk of one donor->receiver key flow."""

    index: int
    donor: str
    target: str
    keys: List[str]


@dataclass
class _Outstanding:
    """One unacked drain frame: resent on timer, given up after retries."""

    token: str
    mig: "_Migration"
    destination: str
    frame: Message
    retries: int = 0


class _Migration:
    """The full state of one queued or draining migration."""

    def __init__(
        self,
        mig_id: str,
        kind: str,
        report: MigrationReport,
        ring: Optional[HashRing],
    ) -> None:
        self.mig_id = mig_id
        self.kind = kind                      # "resize" | "move"
        self.report = report
        self.ring = ring                      # routes moved keys (resize only)
        self.move_target: Optional[str] = None
        # Donor shards: replica servers (index-paired with receivers), the
        # epoch each donor fences at, and whether it is evicted at the end.
        self.donors: Dict[str, List[str]] = {}
        self.donor_epochs: Dict[str, int] = {}
        self.donor_evict: Dict[str, bool] = {}
        # Receiver shards: (epoch, replica servers).
        self.receivers: Dict[str, Tuple[int, List[str]]] = {}
        self.stage = "queued"
        self.waiting: Set[str] = set()
        self.census: Dict[Tuple[str, str], List[str]] = {}
        self.transfer_states: Dict[str, Dict[str, Any]] = {}
        self.ranges: List[_Range] = []
        self.range_index = 0
        self.moved_keys: Set[str] = set()
        self.registers_moved = 0
        self.dead: Set[str] = set()
        self.pending_by_receiver: Dict[str, Set[str]] = {}
        self.drop_by_donor: Dict[str, Set[str]] = {}


class ControlPlaneEngine:
    """Sans-I/O control plane: metadata flips, incremental drains, autoscaling.

    The adapter registers the engine at ``control_id`` on its transport,
    delivers every frame addressed there to :meth:`on_frame`, executes the
    returned effects, and routes timer fires to :meth:`on_timer`.
    ``proxy_ids`` is the live proxy set view pushes go to; backends update
    it in place as proxies come and go.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        control_id: str = CONTROL_PLANE,
        proxy_ids: Sequence[str] = (),
        delta_views: bool = True,
        drain_range_size: int = DRAIN_RANGE_SIZE,
        retry_delay: float = DRAIN_RETRY_DELAY,
        max_retries: int = DRAIN_MAX_RETRIES,
        autoscale_interval: float = AUTOSCALE_INTERVAL,
        autoscale_ratio: float = AUTOSCALE_RATIO,
        autoscale_min_ops: int = AUTOSCALE_MIN_OPS,
        observer: Optional[EngineObserver] = None,
    ) -> None:
        if drain_range_size < 1:
            raise ValueError("drain_range_size must be positive")
        self.shard_map = shard_map
        self.control_id = control_id
        self.proxy_ids: List[str] = list(proxy_ids)
        self.delta_views = delta_views
        self.drain_range_size = drain_range_size
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self.autoscale_interval = autoscale_interval
        self.autoscale_ratio = autoscale_ratio
        self.autoscale_min_ops = autoscale_min_ops
        self.observer = observer if observer is not None else NULL_OBSERVER

        self._queue: Deque[_Migration] = deque()
        self._outstanding: Dict[str, _Outstanding] = {}
        self._mig_seq = 0
        self._token_seq = 0

        self.view_pushes_sent = 0
        self.view_push_acks = 0
        self.drains_started = 0
        self.drains_completed = 0
        self.ranges_drained = 0

        self._autoscaling = False
        self._op_counts: Dict[str, int] = {}
        self.autoscale_actions: List[Dict[str, Any]] = []

    # -- introspection ----------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while any migration is draining or queued."""
        return bool(self._queue)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- rebalance entry points -------------------------------------------------

    def start_resize(
        self, new_num_shards: int
    ) -> Tuple[MigrationReport, List[Effect]]:
        """Resize the map (synchronously) and queue the incremental drain.

        The returned report's shard-set fields are final immediately; its
        data counters fill when the drain completes (``report.on_done``).
        The returned effects carry the view pushes plus -- when no other
        migration is draining -- the first fence frames.
        """
        plan = self.shard_map.resize(new_num_shards)
        report = MigrationReport(
            shards_added=[spec.shard_id for spec in plan.added],
            shards_removed=[spec.shard_id for spec in plan.removed],
            shards_fenced=sorted(plan.fenced),
        )
        effects = self._push_views(plan)
        mig = self._build_resize(plan, report)
        if mig is None:
            report._complete()
            return report, effects
        effects.extend(self._enqueue(mig))
        return report, effects

    def start_move(
        self, shard_id: str, group_id: str
    ) -> Tuple[MigrationReport, List[Effect]]:
        """Re-home one shard (synchronously) and queue its drain."""
        plan = self.shard_map.move_shard(shard_id, group_id)
        report = MigrationReport(shards_fenced=[shard_id])
        effects = self._push_views(plan)
        if plan.old_group.group_id == plan.new_group.group_id:
            report._complete()
            return report, effects
        mig = _Migration(self._next_mig_id(), "move", report, ring=None)
        mig.move_target = shard_id
        mig.donors[shard_id] = list(plan.old_group.servers)
        mig.donor_epochs[shard_id] = plan.spec.epoch
        mig.donor_evict[shard_id] = True
        mig.receivers[shard_id] = (plan.spec.epoch, list(plan.new_group.servers))
        effects.extend(self._enqueue(mig))
        return report, effects

    def _push_views(self, plan) -> List[Effect]:
        frames = view_push_frames(
            self.shard_map, self.proxy_ids, plan=plan,
            delta=self.delta_views, sender=self.control_id,
        )
        self.view_pushes_sent += len(frames)
        return [SendFrame(frame.receiver, frame) for frame in frames]

    def _next_mig_id(self) -> str:
        self._mig_seq += 1
        return f"m{self._mig_seq}"

    def _build_resize(
        self, plan: ResizePlan, report: MigrationReport
    ) -> Optional[_Migration]:
        if not plan.added and not plan.removed and not plan.fenced:
            return None
        mig = _Migration(self._next_mig_id(), "resize", report, ring=plan.new_ring)
        if plan.added:
            # Growth: the fenced survivors donate the stolen arcs; every
            # added shard is a receiver (hosted even if no keys move yet).
            for shard_id, epoch in plan.fenced.items():
                spec = self.shard_map.shards[shard_id]
                mig.donors[shard_id] = list(spec.group.servers)
                mig.donor_epochs[shard_id] = epoch
                mig.donor_evict[shard_id] = False
            for spec in plan.added:
                mig.receivers[spec.shard_id] = (spec.epoch, list(spec.group.servers))
        else:
            # Shrink: the removed shards donate everything (their replicas
            # fence one past the final epoch and are evicted at the end);
            # the fenced arc-receiving survivors are the receivers.
            for spec in plan.removed:
                mig.donors[spec.shard_id] = list(spec.group.servers)
                mig.donor_epochs[spec.shard_id] = spec.epoch
                mig.donor_evict[spec.shard_id] = True
            for shard_id, epoch in plan.fenced.items():
                spec = self.shard_map.shards[shard_id]
                mig.receivers[shard_id] = (epoch, list(spec.group.servers))
        return mig

    def _enqueue(self, mig: _Migration) -> List[Effect]:
        self._queue.append(mig)
        if len(self._queue) == 1:
            return self._begin(mig)
        return []

    # -- frame and timer input --------------------------------------------------

    def on_frame(self, frame: Message) -> List[Effect]:
        """Consume one frame addressed to the control plane."""
        if frame.kind == VIEW_PUSH_ACK_KIND:
            self.view_push_acks += 1
            return []
        if frame.kind in (
            DRAIN_ACK_KIND, DRAIN_FENCE_ACK_KIND, DRAIN_TRANSFER_ACK_KIND
        ):
            return self._on_drain_ack(frame)
        return []  # tolerate strays (late acks of kinds we no longer track)

    def _on_drain_ack(self, frame: Message) -> List[Effect]:
        token = frame.payload.get("token")
        pending = self._outstanding.pop(token, None)
        if pending is None:
            return []  # duplicate or given-up ack
        self.observer.emit(FRAME_RECEIVED, kind=frame.kind, source=frame.sender)
        mig = pending.mig
        effects: List[Effect] = [CancelTimer(("drain", token))]
        if frame.kind == DRAIN_FENCE_ACK_KIND:
            shard = frame.payload.get("shard")
            mig.census[(shard, frame.sender)] = list(frame.payload.get("keys", ()))
        elif frame.kind == DRAIN_TRANSFER_ACK_KIND:
            mig.transfer_states[frame.sender] = dict(
                frame.payload.get("states", {})
            )
        mig.waiting.discard(token)
        if not mig.waiting and self._queue and self._queue[0] is mig:
            effects.extend(self._advance(mig))
        return effects

    def on_timer(self, timer_id: TimerId) -> List[Effect]:
        """Consume one timer fire (drain retry or autoscale tick)."""
        if not timer_id:
            return []
        if timer_id[0] == "autoscale":
            return self._autoscale_tick()
        if timer_id[0] != "drain":
            return []
        pending = self._outstanding.get(timer_id[1])
        if pending is None:
            return []
        pending.retries += 1
        if pending.retries > self.max_retries:
            # The replica is unreachable: give up on it for the rest of
            # this migration.  The drain is built to survive up to t dead
            # replicas per group, the same bound the quorums tolerate.
            del self._outstanding[pending.token]
            mig = pending.mig
            mig.dead.add(pending.destination)
            mig.waiting.discard(pending.token)
            if not mig.waiting and self._queue and self._queue[0] is mig:
                return self._advance(mig)
            return []
        self.observer.emit(
            FRAME_SENT, kind=pending.frame.kind, dest=pending.destination,
            retry=pending.retries,
        )
        return [
            SendFrame(pending.destination, pending.frame),
            StartTimer(("drain", pending.token), self.retry_delay),
        ]

    # -- the drain state machine ------------------------------------------------

    def _send(
        self, mig: _Migration, destination: str, frame: Message
    ) -> List[Effect]:
        if destination in mig.dead:
            return []
        token = frame.payload["token"]
        self._outstanding[token] = _Outstanding(
            token=token, mig=mig, destination=destination, frame=frame
        )
        mig.waiting.add(token)
        self.observer.emit(FRAME_SENT, kind=frame.kind, dest=destination)
        return [
            SendFrame(destination, frame),
            StartTimer(("drain", token), self.retry_delay),
        ]

    def _token(self) -> str:
        self._token_seq += 1
        return f"t{self._token_seq}"

    def _advance(self, mig: _Migration) -> List[Effect]:
        if mig.stage == "fencing":
            return self._enter_hosting(mig)
        if mig.stage == "hosting":
            mig.range_index = 0
            return self._enter_transfer(mig)
        if mig.stage == "transfer":
            return self._enter_install(mig)
        if mig.stage == "install":
            return self._close_range(mig)
        if mig.stage == "completing":
            return self._finish(mig)
        return []

    def _begin(self, mig: _Migration) -> List[Effect]:
        mig.stage = "fencing"
        self.drains_started += 1
        self.observer.emit(
            DRAIN_STARTED, mig=mig.mig_id, kind=mig.kind,
            donors=sorted(mig.donors), receivers=sorted(mig.receivers),
        )
        effects: List[Effect] = []
        for shard, servers in mig.donors.items():
            epoch = mig.donor_epochs[shard]
            for server in servers:
                effects.extend(self._send(mig, server, make_drain_fence(
                    self.control_id, server, mig.mig_id, self._token(),
                    shard, epoch,
                )))
        if not mig.waiting:
            effects.extend(self._advance(mig))
        return effects

    def _enter_hosting(self, mig: _Migration) -> List[Effect]:
        # Union each donor's censuses across its replicas (replicas may
        # hold different key sets after crashes or partial writes), then
        # route every key through the plan's ring to find its new owner.
        mig.stage = "hosting"
        flows: Dict[Tuple[str, str], Set[str]] = {}
        for shard in mig.donors:
            union: Set[str] = set()
            for server in mig.donors[shard]:
                union.update(mig.census.get((shard, server), ()))
            for key in union:
                target = (
                    mig.move_target if mig.move_target is not None
                    else mig.ring.owner_of(key)
                )
                if target == shard and mig.move_target is None:
                    continue  # the key's arc did not move
                flows.setdefault((shard, target), set()).add(key)
                mig.moved_keys.add(key)
                mig.drop_by_donor.setdefault(shard, set()).add(key)
                mig.pending_by_receiver.setdefault(target, set()).add(key)
        index = 0
        for donor, target in sorted(flows):
            keys = sorted(flows[(donor, target)])
            for start in range(0, len(keys), self.drain_range_size):
                mig.ranges.append(_Range(
                    index=index, donor=donor, target=target,
                    keys=keys[start:start + self.drain_range_size],
                ))
                index += 1
        effects: List[Effect] = []
        for target, (epoch, servers) in mig.receivers.items():
            keys = sorted(mig.pending_by_receiver.get(target, ()))
            for server in servers:
                effects.extend(self._send(mig, server, make_drain_host(
                    self.control_id, server, mig.mig_id, self._token(),
                    target, epoch, keys,
                )))
        if not mig.waiting:
            effects.extend(self._advance(mig))
        return effects

    def _enter_transfer(self, mig: _Migration) -> List[Effect]:
        if mig.range_index >= len(mig.ranges):
            return self._enter_completing(mig)
        rng = mig.ranges[mig.range_index]
        mig.stage = "transfer"
        mig.transfer_states = {}
        self.observer.emit(
            DRAIN_RANGE_OPENED, mig=mig.mig_id, range=rng.index,
            shard=rng.donor, target=rng.target, size=len(rng.keys),
        )
        effects: List[Effect] = []
        for server in mig.donors[rng.donor]:
            effects.extend(self._send(mig, server, make_drain_transfer(
                self.control_id, server, mig.mig_id, self._token(),
                rng.donor, rng.keys,
            )))
        if not mig.waiting:
            effects.extend(self._advance(mig))
        return effects

    def _enter_install(self, mig: _Migration) -> List[Effect]:
        rng = mig.ranges[mig.range_index]
        mig.stage = "install"
        epoch, servers = mig.receivers[rng.target]
        donor_servers = mig.donors[rng.donor]
        merged: Optional[Dict[str, List[Dict[str, Any]]]] = None
        effects: List[Effect] = []
        for index, server in enumerate(servers):
            if server in mig.dead:
                continue
            donor = donor_servers[index] if index < len(donor_servers) else None
            if donor is not None and donor in mig.transfer_states:
                states: Dict[str, List[Dict[str, Any]]] = {
                    key: [blob]
                    for key, blob in mig.transfer_states[donor].items()
                }
            else:
                # The paired donor replica is dead: deliver the merged
                # blobs of every live donor instead.  The receiver replica
                # ends up with at least as much state as any donor had, so
                # per-key replica counts (and quorum intersection) only
                # improve.
                if merged is None:
                    merged = {}
                    for acked in mig.transfer_states.values():
                        for key, blob in acked.items():
                            merged.setdefault(key, []).append(blob)
                states = merged
            mig.registers_moved += len(states)
            effects.extend(self._send(mig, server, make_drain_install(
                self.control_id, server, mig.mig_id, self._token(),
                rng.target, epoch, rng.keys, states,
            )))
        if not mig.waiting:
            effects.extend(self._advance(mig))
        return effects

    def _close_range(self, mig: _Migration) -> List[Effect]:
        rng = mig.ranges[mig.range_index]
        self.ranges_drained += 1
        self.observer.emit(
            DRAIN_RANGE_CLOSED, mig=mig.mig_id, range=rng.index,
            shard=rng.donor, target=rng.target, size=len(rng.keys),
        )
        mig.range_index += 1
        return self._enter_transfer(mig)

    def _enter_completing(self, mig: _Migration) -> List[Effect]:
        mig.stage = "completing"
        effects: List[Effect] = []
        for shard, servers in mig.donors.items():
            drop = sorted(mig.drop_by_donor.get(shard, ()))
            evict = mig.donor_evict.get(shard, False)
            for server in servers:
                effects.extend(self._send(mig, server, make_drain_complete(
                    self.control_id, server, mig.mig_id, self._token(),
                    shard, drop, evict,
                )))
        for target, (_epoch, servers) in mig.receivers.items():
            for server in servers:
                effects.extend(self._send(mig, server, make_drain_complete(
                    self.control_id, server, mig.mig_id, self._token(),
                    target, (), False,
                )))
        if not mig.waiting:
            effects.extend(self._advance(mig))
        return effects

    def _finish(self, mig: _Migration) -> List[Effect]:
        mig.stage = "done"
        mig.report.keys_moved = len(mig.moved_keys)
        mig.report.registers_moved = mig.registers_moved
        self.drains_completed += 1
        self.observer.emit(
            DRAIN_COMPLETED, mig=mig.mig_id, kind=mig.kind,
            keys_moved=mig.report.keys_moved,
            registers_moved=mig.report.registers_moved,
            dead_replicas=sorted(mig.dead),
        )
        assert self._queue and self._queue[0] is mig
        self._queue.popleft()
        mig.report._complete()
        if self._queue:
            return self._begin(self._queue[0])
        return []

    # -- the autoscaler ---------------------------------------------------------

    def record_op(self, shard_id: str, count: int = 1) -> None:
        """Fold ``count`` served ops on ``shard_id`` into the current window.

        The adapter calls this from its metrics stream (one call per
        ``sub.served`` event, or batched); the autoscale tick consumes and
        resets the window.
        """
        self._op_counts[shard_id] = self._op_counts.get(shard_id, 0) + count

    @property
    def autoscaling(self) -> bool:
        return self._autoscaling

    def start_autoscaler(self) -> List[Effect]:
        """Arm the recurring autoscale tick."""
        self._autoscaling = True
        return [StartTimer(("autoscale",), self.autoscale_interval)]

    def stop_autoscaler(self) -> List[Effect]:
        """Disarm the tick (so an adapter's event loop can drain and stop)."""
        self._autoscaling = False
        return [CancelTimer(("autoscale",))]

    def _autoscale_tick(self) -> List[Effect]:
        if not self._autoscaling:
            return []
        effects: List[Effect] = [
            StartTimer(("autoscale",), self.autoscale_interval)
        ]
        window, self._op_counts = self._op_counts, {}
        if self.busy:
            return effects  # never stack migrations on top of a live drain
        shard_loads = {
            shard_id: count
            for shard_id, count in window.items()
            if shard_id in self.shard_map.shards
        }
        total = sum(shard_loads.values())
        if total < self.autoscale_min_ops:
            return effects
        group_loads: Dict[str, int] = {gid: 0 for gid in self.shard_map.groups}
        for shard_id, count in shard_loads.items():
            group_loads[self.shard_map.shards[shard_id].group.group_id] += count
        mean = total / len(group_loads)
        order = list(group_loads)
        hottest = max(order, key=lambda gid: (group_loads[gid], -order.index(gid)))
        if group_loads[hottest] <= self.autoscale_ratio * mean:
            return effects
        coldest = pick_coldest_group(group_loads, exclude=(hottest,))
        if coldest is None or group_loads[coldest] >= group_loads[hottest]:
            return effects
        hot_shards = [
            spec.shard_id for spec in self.shard_map.shards_on(hottest)
        ]
        if len(hot_shards) < 2:
            # Moving a group's only shard just relocates the hotspot; a
            # real fix would be a split (resize), which is the operator's
            # call, not the autoscaler's.
            return effects
        victim = max(
            hot_shards,
            key=lambda sid: (shard_loads.get(sid, 0), -hot_shards.index(sid)),
        )
        report, move_effects = self.start_move(victim, coldest)
        self.autoscale_actions.append({
            "shard": victim,
            "from": hottest,
            "to": coldest,
            "group_load": group_loads[hottest],
            "mean_load": mean,
            "window_ops": total,
            "report": report,
        })
        self.observer.emit(
            AUTOSCALE_ACTION, shard=victim, source=hottest, target=coldest,
            group_load=group_loads[hottest], mean_load=mean, window_ops=total,
        )
        effects.extend(move_effects)
        return effects
