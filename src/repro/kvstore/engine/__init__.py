"""The sans-I/O protocol core of the key-value store.

Every piece of kvstore behaviour that is *about the protocol* -- round
lifecycle, batch coalescing, stale-epoch replay, proxy failover, read
routing, view-push adoption, epoch fencing -- lives here as pure,
event-driven state machines:

* :class:`~repro.kvstore.engine.client.ClientSessionEngine` -- one logical
  store client;
* :class:`~repro.kvstore.engine.proxy.ProxyEngine` -- one site-local
  ingress proxy;
* :class:`~repro.kvstore.engine.server.GroupServerEngine` -- one replica of
  a replica group;
* :class:`~repro.kvstore.engine.control.ControlPlaneEngine` -- the cluster
  control plane: incremental key-range drains for live rebalancing, view
  pushes, and the metrics-driven autoscaler.

The engines consume decoded frames (:mod:`repro.messages`), timer fires,
and transport notifications, and emit :mod:`~repro.kvstore.engine.effects`
-- ``(destination, frame)`` sends, timer requests, connection requests, and
operation completions.  They import neither :mod:`asyncio` nor
:mod:`repro.sim` (enforced by a unit test): the transports are *adapters*
that feed the engines and execute their effects --
:mod:`repro.kvstore.sim_backend` on the virtual clock and simulated
network, :mod:`repro.kvstore.net_backend` on asyncio TCP.  A feature
implemented here (delta view pushes, say) works on both backends with no
backend-specific code, and the two backends cannot drift apart on protocol
behaviour by construction.
"""

from __future__ import annotations

from .cache import CacheEntry, ReadCache, payload_fingerprint
from .client import PROXY_QUEUE, ClientSessionEngine
from .control import (
    AUTOSCALE_INTERVAL,
    AUTOSCALE_MIN_OPS,
    AUTOSCALE_RATIO,
    DRAIN_MAX_RETRIES,
    DRAIN_RANGE_SIZE,
    DRAIN_RETRY_DELAY,
    AutoscaleFeed,
    ControlPlaneEngine,
)
from .effects import (
    DEFAULT_RETRY_POLICY,
    DIRECT_INGRESS,
    MAX_ROUND_TIMEOUTS,
    MAX_TRANSIENT_RETRIES,
    PROXY_FAILOVER_TIMEOUT,
    PROXY_ROUND_TIMEOUT,
    RECONNECT_INTERVAL,
    SIM_RETRY_POLICY,
    CancelTimer,
    Connect,
    Effect,
    OpCompleted,
    OpFailed,
    RetryPolicy,
    SendFrame,
    StartTimer,
    TimerId,
)
from .proxy import ProxyEngine
from .routing import (
    CONTROL_PLANE,
    BroadcastReads,
    CachedShardView,
    NearestQuorum,
    ProxyRoute,
    ReadRoutingPolicy,
    RoundPlan,
    attempt_scoped_id,
    make_proxy_kill_trigger,
    parse_attempt_scoped_id,
    pick_one_proxy_per_site,
    plan_round,
    view_push_frames,
)
from .server import (
    MAX_STALE_RETRIES,
    STALE_SHARD_KIND,
    GroupServerEngine,
    StaleShardError,
    is_stale_reply,
    make_stale_reply,
)
from .stats import BatchStats

__all__ = [
    "ClientSessionEngine",
    "ProxyEngine",
    "GroupServerEngine",
    "ControlPlaneEngine",
    "AutoscaleFeed",
    "DRAIN_RANGE_SIZE",
    "DRAIN_RETRY_DELAY",
    "DRAIN_MAX_RETRIES",
    "AUTOSCALE_INTERVAL",
    "AUTOSCALE_RATIO",
    "AUTOSCALE_MIN_OPS",
    "PROXY_QUEUE",
    "Effect",
    "SendFrame",
    "StartTimer",
    "CancelTimer",
    "Connect",
    "OpCompleted",
    "OpFailed",
    "TimerId",
    "DIRECT_INGRESS",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "SIM_RETRY_POLICY",
    "RECONNECT_INTERVAL",
    "MAX_TRANSIENT_RETRIES",
    "PROXY_ROUND_TIMEOUT",
    "MAX_ROUND_TIMEOUTS",
    "PROXY_FAILOVER_TIMEOUT",
    "CONTROL_PLANE",
    "BroadcastReads",
    "CachedShardView",
    "NearestQuorum",
    "ProxyRoute",
    "ReadRoutingPolicy",
    "RoundPlan",
    "attempt_scoped_id",
    "parse_attempt_scoped_id",
    "plan_round",
    "pick_one_proxy_per_site",
    "make_proxy_kill_trigger",
    "view_push_frames",
    "STALE_SHARD_KIND",
    "MAX_STALE_RETRIES",
    "StaleShardError",
    "is_stale_reply",
    "make_stale_reply",
    "BatchStats",
    "CacheEntry",
    "ReadCache",
    "payload_fingerprint",
]
