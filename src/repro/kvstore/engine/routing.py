"""Shared routing state of the ingress tier: views, policies, round plans.

The register emulations charge their message cost per client round: every
operation pays one frame per replica, so K clients hammering the same shard
cost K times the quorum fan-out even when their rounds are concurrent.  The
proxy tier fixes that at the datacenter boundary; this module is the routing
brain its engines (and the client engine's failover machinery) share:

* :class:`CachedShardView` -- a possibly-stale snapshot of the shard map
  whose staleness is *detected* by the replicas' epoch fence and *repaired*
  either by a refresh (after a ``stale-shard`` bounce) or proactively by a
  control-plane **view push**.  Pushes come in two shapes: a full
  :meth:`~repro.kvstore.sharding.ShardMap.view_snapshot`, or a **delta**
  (:meth:`~repro.kvstore.sharding.ShardMap.view_delta`) carrying only the
  fenced/added/removed entries of one rebalance -- O(moved) instead of
  O(shards).  Both are adopted monotonically: reordered or duplicated
  pushes can never roll routing back, and a delta whose base the view has
  not reached is skipped (the epoch-fence bounce remains the safety net).
* :class:`ReadRoutingPolicy` -- which replicas of the owner group a read
  round targets: :class:`BroadcastReads` (every replica) or
  :class:`NearestQuorum` (the closest quorum per site/link metadata).
* :func:`plan_round` -- the single routing decision both backends' proxies
  make per forwarded round.
* :func:`attempt_scoped_id` -- the replay-isolation scheme: replayed rounds
  get fresh scoped op ids so a quorum can never mix replies from the pre-
  and post-rebalance owner groups (or from two different proxies).

Correctness notes.  The proxy preserves each forwarded sub-message's
*original client* as its sender, because the protocols' server logic records
senders in per-tag ``updated`` sets (the paper's crucial info) -- collapsing
clients into the proxy's identity would starve the fast-read admissibility
predicate.  Restricting a read round to any ``S - t`` replicas is always
safe for atomicity (every quorum of that size intersects every write
quorum); it trades the broadcast's redundancy for frame cost, so
:class:`NearestQuorum` takes a ``spare`` margin for deployments that want
crash headroom on reads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ...core.operations import OpKind
from ...messages import Message, ProxySubRequest, make_view_push
from ..sharding import HashRing, MovePlan, ResizePlan, ShardMap, stable_hash

__all__ = [
    "ProxyRoute",
    "RoundPlan",
    "CachedShardView",
    "ReadRoutingPolicy",
    "BroadcastReads",
    "NearestQuorum",
    "plan_round",
    "attempt_scoped_id",
    "parse_attempt_scoped_id",
    "pick_one_proxy_per_site",
    "make_proxy_kill_trigger",
    "view_push_frames",
    "CONTROL_PLANE",
]

#: The sender identity of control-plane view pushes on both backends.
CONTROL_PLANE = "control-plane"


@dataclass(frozen=True)
class ProxyRoute:
    """One key's resolved route at snapshot time: shard, fence, and group."""

    shard_id: str
    epoch: int
    group_id: str
    servers: Tuple[str, ...]
    quorum_size: int


def _route_from_entry(shard_id: str, entry: Mapping[str, Any]) -> ProxyRoute:
    return ProxyRoute(
        shard_id=shard_id,
        epoch=int(entry["epoch"]),
        group_id=str(entry["group"]),
        servers=tuple(entry["servers"]),
        quorum_size=int(entry["quorum"]),
    )


class CachedShardView:
    """A routing snapshot of a :class:`ShardMap`, refreshed on invalidation.

    The authoritative map lives with the cluster control plane; a proxy
    routes against a *copy* of the ring and the per-shard (epoch, group)
    assignments taken at the last refresh.  Between refreshes the view can
    also adopt control-plane pushes -- full snapshots or per-rebalance
    deltas -- with :meth:`apply_push`, which needs *no* access to the
    authoritative map (the push carries everything the view routes on,
    which is what makes it a real state transfer in a multi-process
    deployment).  (In such a deployment ``refresh`` would be an RPC to the
    control plane; here the map object is reachable in-process, and the
    snapshot boundary is what keeps the view honest about staleness.)
    """

    def __init__(self, shard_map: ShardMap) -> None:
        self._map = shard_map
        self.refreshes = 0
        self.pushes_applied = 0
        self.deltas_applied = 0
        self.deltas_skipped = 0
        self._ring = shard_map.ring
        self._routes: Dict[str, ProxyRoute] = {}
        self._take_snapshot()

    def _take_snapshot(self) -> None:
        self._ring = self._map.ring
        self._routes = {
            shard_id: ProxyRoute(
                shard_id=shard_id,
                epoch=spec.epoch,
                group_id=spec.group.group_id,
                servers=tuple(spec.group.servers),
                quorum_size=spec.quorum_size,
            )
            for shard_id, spec in self._map.shards.items()
        }

    @property
    def ring_epoch(self) -> int:
        """The snapshot's ring epoch (lags the map's after a live resize)."""
        return self._ring.epoch

    @property
    def group_ids(self) -> List[str]:
        """Every replica group id (groups are fixed; only shards move)."""
        return list(self._map.groups)

    def resolve(self, key: str) -> ProxyRoute:
        """Route ``key`` through the snapshot (possibly stale -- by design)."""
        return self._routes[self._ring.owner_of(key)]

    def refresh(self) -> None:
        """Re-snapshot the authoritative map after a stale-epoch bounce."""
        self.refreshes += 1
        self._take_snapshot()

    # -- control-plane pushes ---------------------------------------------------

    def apply_push(self, view: Mapping[str, Any]) -> bool:
        """Adopt a control-plane view push; returns ``False`` for pushes that
        cannot (or must not) be applied.

        ``view`` is either a full
        :meth:`~repro.kvstore.sharding.ShardMap.view_snapshot` payload or a
        :meth:`~repro.kvstore.sharding.ShardMap.view_delta` payload, both
        carried by a :data:`~repro.messages.VIEW_PUSH_KIND` frame.  Pushes
        may be reordered against refreshes and against each other, so the
        view only moves forward: a push whose ring epoch is behind the
        snapshot's is dropped, and per shard the fresher of the pushed and
        cached fencing epochs wins.  A *delta* additionally names the ring
        epoch it was computed against (``base_ring_epoch``); a delta whose
        base the view has not reached is skipped -- the stale routes keep
        bouncing off the epoch fence until a refresh repairs them, which is
        the clean degradation a dropped delta costs.
        """
        if view.get("delta"):
            return self._apply_delta(view)
        return self._apply_full(view)

    def _apply_full(self, view: Mapping[str, Any]) -> bool:
        pushed_ring_epoch = int(view["ring_epoch"])
        if pushed_ring_epoch < self._ring.epoch:
            return False
        shard_ids = list(view["shard_ids"])
        if pushed_ring_epoch > self._ring.epoch or set(shard_ids) != set(self._routes):
            # Ring construction is deterministic in (shard ids, virtual
            # nodes), so the rebuilt ring is identical to the control plane's.
            self._ring = HashRing(
                shard_ids,
                virtual_nodes=int(view.get("virtual_nodes", self._ring.virtual_nodes)),
                epoch=pushed_ring_epoch,
            )
        routes: Dict[str, ProxyRoute] = {}
        for shard_id in shard_ids:
            pushed = _route_from_entry(shard_id, view["routes"][shard_id])
            cached = self._routes.get(shard_id)
            routes[shard_id] = (
                cached if cached is not None and cached.epoch > pushed.epoch else pushed
            )
        self._routes = routes
        self.pushes_applied += 1
        return True

    def _apply_delta(self, view: Mapping[str, Any]) -> bool:
        pushed_ring_epoch = int(view["ring_epoch"])
        base_ring_epoch = int(view["base_ring_epoch"])
        if pushed_ring_epoch < self._ring.epoch:
            return False  # stale reordered delta: routing already moved past it
        if base_ring_epoch != self._ring.epoch:
            # The delta was computed against a base this view never adopted
            # (an earlier delta was dropped, or a refresh is still pending).
            # Applying it could resurrect routes for shards we know nothing
            # about, so skip it; the epoch fence keeps the staleness safe.
            self.deltas_skipped += 1
            return False
        added = [str(shard_id) for shard_id in view.get("added", ())]
        removed = {str(shard_id) for shard_id in view.get("removed", ())}
        if added or removed:
            shard_ids = [s for s in self._routes if s not in removed] + [
                s for s in added if s not in self._routes
            ]
            self._ring = HashRing(
                shard_ids,
                virtual_nodes=int(view.get("virtual_nodes", self._ring.virtual_nodes)),
                epoch=pushed_ring_epoch,
            )
        for shard_id in removed:
            self._routes.pop(shard_id, None)
        for shard_id, entry in view["routes"].items():
            pushed = _route_from_entry(str(shard_id), entry)
            cached = self._routes.get(pushed.shard_id)
            if cached is None or pushed.epoch > cached.epoch:
                self._routes[pushed.shard_id] = pushed
        self.pushes_applied += 1
        self.deltas_applied += 1
        return True


class ReadRoutingPolicy(abc.ABC):
    """Chooses which replicas of the owner group a *read* round targets.

    Write rounds always broadcast: a write must land on every replica it can
    reach for the ``S - t`` storage bound to hold under crashes.  Reads only
    need *some* quorum, and which one is a pure performance choice -- any
    ``wait_for``-sized subset intersects every write quorum.
    """

    name = "policy"

    @abc.abstractmethod
    def read_targets(
        self,
        origin: str,
        servers: Sequence[str],
        wait_for: int,
        key: Optional[str] = None,
    ) -> List[str]:
        """The replicas ``origin``'s read round for ``key`` should go to.

        Must return at least ``wait_for`` servers, else the round can never
        complete; policies widen their pick to the whole group before they
        would ever under-target.  ``key`` lets a policy shed load
        deterministically per key; stateless policies may ignore it.
        """


class BroadcastReads(ReadRoutingPolicy):
    """Send every read round to every replica (the classic emulation)."""

    name = "broadcast"

    def read_targets(
        self,
        origin: str,
        servers: Sequence[str],
        wait_for: int,
        key: Optional[str] = None,
    ) -> List[str]:
        return list(servers)


class NearestQuorum(ReadRoutingPolicy):
    """Send each read round to the closest quorum only.

    ``link_cost(origin, server)`` is static deployment metadata (site
    distances), *not* a live latency probe -- the same information a
    :class:`~repro.sim.delays.GeoDelay` model encodes.  Equidistant picks
    are tie-broken by a stable hash over ``(origin, key, server)``: each
    (proxy, key) pair keeps a deterministic quorum, while *across* keys the
    picks spread uniformly over the equidistant replicas.  Both halves
    matter -- determinism keeps a key's read path cacheable and debuggable,
    and the spreading is where the under-load latency win over broadcast
    comes from (each replica serves a fraction of the read volume instead
    of all of it, so every read's quorum queues behind less work).

    ``spare`` targets that many replicas beyond the quorum so reads stay
    live with up to ``spare`` crashed replicas among the nearest; the
    default of 0 maximizes the frame saving and suits crash-free runs.
    """

    name = "nearest-quorum"

    def __init__(
        self, link_cost: Callable[[str, str], float], spare: int = 0
    ) -> None:
        if spare < 0:
            raise ValueError("spare must be non-negative")
        self.link_cost = link_cost
        self.spare = spare

    @classmethod
    def from_sites(
        cls,
        sites: Mapping[str, str],
        local_cost: float = 0.5,
        wan_cost: float = 40.0,
        spare: int = 0,
    ) -> "NearestQuorum":
        """Build from a process->site map (same shape ``GeoDelay`` takes)."""
        site_of = dict(sites)

        def cost(origin: str, server: str) -> float:
            same = site_of.get(origin) == site_of.get(server)
            return local_cost if same else wan_cost

        return cls(cost, spare=spare)

    def read_targets(
        self,
        origin: str,
        servers: Sequence[str],
        wait_for: int,
        key: Optional[str] = None,
    ) -> List[str]:
        need = min(len(servers), wait_for + self.spare)
        ranked = sorted(
            servers,
            key=lambda server: (
                self.link_cost(origin, server),
                stable_hash(f"{origin}/{key}->{server}"),
            ),
        )
        return ranked[:need]


@dataclass(frozen=True)
class RoundPlan:
    """One attempt's routing decision for a forwarded round."""

    route: ProxyRoute
    targets: Tuple[str, ...]
    wait_for: int


def plan_round(
    view: CachedShardView,
    policy: ReadRoutingPolicy,
    origin: str,
    sub: ProxySubRequest,
) -> RoundPlan:
    """Route one forwarded round through ``view`` and ``policy``.

    The single decision sequence both backends' proxies share: resolve the
    key, settle the ack threshold (``None`` means the owner group's quorum),
    and pick the targets -- writes broadcast, reads go through the policy
    but fall back to the whole group if a policy ever under-targets (a
    round with fewer targets than ``wait_for`` could never complete).
    """
    route = view.resolve(sub.key)
    wait_for = sub.wait_for if sub.wait_for is not None else route.quorum_size
    if sub.op_kind == OpKind.READ.value:
        targets = tuple(
            policy.read_targets(origin, route.servers, wait_for, key=sub.key)
        )
        if len(targets) < wait_for:
            targets = route.servers
    else:
        targets = route.servers
    return RoundPlan(route=route, targets=targets, wait_for=wait_for)


def attempt_scoped_id(op_id: str, attempt: int) -> str:
    """The downstream operation id for one attempt of one forwarded round.

    Scoping the id per attempt is what keeps replays safe: a straggler reply
    to an earlier attempt (possibly served by the *pre*-rebalance owner
    group, or relayed by a since-failed proxy) can never be counted into a
    later attempt's quorum.

    The encoding must be injective over ``(op_id, attempt)`` pairs even when
    the caller-supplied id itself contains the separator -- which happens
    routinely now that scoping *nests*: a client scopes per proxy-failover
    generation and the proxy scopes the result again per replay attempt.  A
    naive ``f"{op_id}@a{attempt}"`` makes ``("x", 1)`` scoped by a second
    level indistinguishable from ``("x@a1", ...)`` scoped once, so the op id
    is percent-escaped first (``%`` then ``@``), leaving the final ``@`` as
    the one unambiguous separator.  :func:`parse_attempt_scoped_id` inverts
    it exactly.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    encoded = op_id.replace("%", "%25").replace("@", "%40")
    return f"{encoded}@a{attempt}"


def parse_attempt_scoped_id(scoped: str) -> Tuple[str, int]:
    """Inverse of :func:`attempt_scoped_id`: the ``(op_id, attempt)`` pair."""
    encoded, separator, attempt = scoped.partition("@")
    if not separator or not attempt.startswith("a") or not attempt[1:].isdigit():
        raise ValueError(f"not an attempt-scoped id: {scoped!r}")
    return encoded.replace("%40", "@").replace("%25", "%"), int(attempt[1:])


def pick_one_proxy_per_site(
    proxies: Sequence[Tuple[str, Optional[str], bool]],
) -> List[str]:
    """One live proxy id per site from ``(proxy_id, site, alive)`` triples.

    The victim-selection rule of the proxy-kill fault experiments: killing
    one proxy *per site* exercises every site's failover path while leaving
    each site's remaining candidates (or the direct fallback) to absorb the
    traffic.  ``site=None`` rows all share one implicit site.
    """
    victims: List[str] = []
    sites_hit = set()
    for proxy_id, site, alive in proxies:
        if not alive or site in sites_hit:
            continue
        sites_hit.add(site)
        victims.append(proxy_id)
    return victims


def make_proxy_kill_trigger(
    completed_ops: Callable[[], int],
    threshold: int,
    victims: Callable[[], List[str]],
    kill: Callable[[str], None],
) -> Tuple[Callable[[], None], Dict[str, object]]:
    """A fire-once completion hook that kills proxies mid-workload.

    The shared shape of both backends' ``kill_proxy_after_ops`` option
    (mirroring :func:`~repro.kvstore.migration.make_resize_trigger`): once
    ``completed_ops()`` reaches ``threshold`` it calls ``kill`` for each id
    ``victims()`` returns -- typically :func:`pick_one_proxy_per_site` over
    the cluster's live proxies -- exactly once, and fills the returned
    record with ``{"killed": [...], "at_ops": N}``.
    """
    record: Dict[str, object] = {}
    state = {"fired": False}

    def hook() -> None:
        if state["fired"] or completed_ops() < threshold:
            return
        state["fired"] = True
        chosen = victims()
        record.update({"killed": chosen, "at_ops": completed_ops()})
        for victim in chosen:
            kill(victim)

    return hook, record


def view_push_frames(
    shard_map: ShardMap,
    proxy_ids: Sequence[str],
    plan: Optional[Union[ResizePlan, MovePlan]] = None,
    delta: bool = True,
    sender: str = CONTROL_PLANE,
) -> List[Message]:
    """The control-plane push frames for one live rebalance, one per proxy.

    This is the *sending* half of the view-push feature, shared by both
    cluster backends (the adopting half is :meth:`CachedShardView.apply_push`
    -- together they make delta pushes a single engine feature with no
    backend-specific code).  With ``delta`` and a rebalance ``plan``, each
    frame carries only the entries the rebalance touched
    (:meth:`~repro.kvstore.sharding.ShardMap.view_delta` -- O(moved) per
    push); otherwise the full snapshot.  A rebalance that changed nothing
    produces no frames at all.
    """
    if not proxy_ids:
        return []
    if delta and plan is not None:
        view = shard_map.view_delta(plan)
        if view is None:
            return []
    else:
        view = shard_map.view_snapshot()
    return [make_view_push(sender, proxy_id, view) for proxy_id in proxy_ids]
