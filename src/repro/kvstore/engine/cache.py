"""The proxy's hot-key read cache: bounded LRU of lease-backed entries.

This module is pure bookkeeping -- the lease *protocol* (what makes serving
a cached value atomic) lives in :class:`~repro.kvstore.engine.proxy.ProxyEngine`
and :class:`~repro.kvstore.engine.server.GroupServerEngine`; the structures
here only remember what the protocol has established:

* a :class:`CacheEntry` is one key's cached read -- the quorum replies of
  each round-trip of the fill read, the replicas that granted a lease for
  it, and the single-flight follower queue of reads that arrived while the
  fill was still in the air;
* a :class:`ReadCache` is the bounded LRU map of entries.

An entry is **servable** once a write-blocking set of replicas holds the
lease (``granted``: grants from at least ``wait_for`` route replicas) and
the fill recorded every round-trip of the read protocol.  Any write that
could supersede the cached value must gather ``wait_for`` acks of its own,
and every replica deferring on our lease withholds its ack -- two quorums
out of the same replica group intersect, so no such write completes while
the entry serves.  That is the whole atomicity argument, and ``granted``
is its load-bearing check.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ...messages import Message, ProxySubRequest
from .routing import ProxyRoute

__all__ = ["CacheEntry", "ReadCache", "payload_fingerprint"]


def payload_fingerprint(payload: Dict[str, Any]) -> str:
    """A canonical string for payload equality across dict orderings.

    Cached round-trips are matched on (kind, payload): a read's writeback
    payload derives deterministically from the round-1 replies, so a
    follower served the cached round 1 produces byte-for-byte the same
    round-2 payload as the fill did -- which is what makes serving the
    cached round 2 sound.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class CacheEntry:
    """One key's cached read and the lease state backing it.

    ``fill_client``/``fill_op_id`` identify the read operation elected to
    fill the entry (its later round-trips are recognized by this identity
    and ride with the lease mark); ``fill_pending`` back-references the
    fill's in-flight round so an eviction can detach it (the round then
    completes as an ordinary leaseless read).  ``nonce`` is the entry's
    unique fill identity: it rides in the lease mark of every fill
    sub-request and is echoed by ``"lease-grant"`` frames, so a delayed
    grant meant for an evicted predecessor entry of the same key is never
    credited to this one.  ``stale`` flips when the
    proxy-side lease deadline passes in bounded-staleness mode: the lease
    is handed back (writers stop blocking on us) but the entry keeps
    serving until the staleness budget runs out.
    """

    key: str
    route: Optional[ProxyRoute] = None
    wait_for: int = 0
    fill_client: str = ""
    fill_op_id: str = ""
    nonce: str = ""
    fill_pending: Optional[Any] = None
    grants: Set[str] = field(default_factory=set)
    rounds: Dict[int, List[Message]] = field(default_factory=dict)
    round_payloads: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    inflight: Set[int] = field(default_factory=set)
    followers: Dict[int, List[Tuple[str, ProxySubRequest]]] = field(
        default_factory=dict
    )
    stale: bool = False

    @property
    def granted(self) -> bool:
        """Whether a write-blocking set of replicas holds our lease."""
        return self.wait_for > 0 and len(self.grants) >= self.wait_for

    def complete(self, read_round_trips: int) -> bool:
        """Whether every round-trip of the read protocol is recorded."""
        return all(rt in self.rounds for rt in range(1, read_round_trips + 1))

    def matches(self, round_trip: int, sub: ProxySubRequest) -> bool:
        """Whether ``sub`` is the same protocol round the fill recorded."""
        recorded = self.round_payloads.get(round_trip)
        return recorded == (sub.kind, payload_fingerprint(sub.payload))

    def replies_for(
        self, round_trip: int, wait_for: Optional[int]
    ) -> Optional[List[Message]]:
        """The cached quorum for one round, or None if it cannot satisfy
        the requested ack threshold."""
        recorded = self.rounds.get(round_trip)
        if recorded is None:
            return None
        needed = wait_for if wait_for is not None else self.wait_for
        if needed <= 0 or len(recorded) < needed:
            return None
        return recorded[:needed]


class ReadCache:
    """A bounded LRU map ``key -> CacheEntry``.

    Purely mechanical: insertion beyond capacity returns the evicted
    least-recently-used entry so the caller (the proxy engine) can run the
    protocol side of the eviction -- lease releases, follower re-dispatch,
    timer cancels.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[CacheEntry]:
        """Look up an entry and mark it most-recently-used."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Look up an entry without touching recency."""
        return self._entries.get(key)

    def pop(self, key: str) -> Optional[CacheEntry]:
        return self._entries.pop(key, None)

    def insert(self, key: str, entry: CacheEntry) -> Optional[CacheEntry]:
        """Add an entry; returns the LRU entry displaced by overflow."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            _lru_key, lru_entry = self._entries.popitem(last=False)
            return lru_entry
        return None

    def entries(self) -> Iterator[CacheEntry]:
        return iter(list(self._entries.values()))

    def clear(self) -> None:
        self._entries.clear()
