"""Seeded random number generation.

Everything in the simulator that makes a random choice goes through a
:class:`SeededRng` so that any execution (including any atomicity violation
found by the checker) can be reproduced exactly from its seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["SeededRng"]


class SeededRng:
    """A thin deterministic wrapper around :class:`random.Random`."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "SeededRng":
        """A child generator whose stream is independent of the parent's."""
        return SeededRng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(list(seq), k)

    def shuffle(self, seq: List[T]) -> List[T]:
        copy = list(seq)
        self._random.shuffle(copy)
        return copy

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Sample an index in ``[0, n)`` with a Zipf-like distribution."""
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        threshold = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if acc >= threshold:
                return i
        return n - 1
