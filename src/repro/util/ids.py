"""Identifier helpers for servers and clients."""

from __future__ import annotations

import itertools
from typing import List

__all__ = ["IdGenerator", "server_ids", "client_ids"]


class IdGenerator:
    """Monotonic identifier generator with a fixed prefix."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def next(self) -> str:
        return f"{self._prefix}-{next(self._counter)}"


def server_ids(count: int) -> List[str]:
    """Conventional server ids ``s1..sS`` as used throughout the paper."""
    return [f"s{i}" for i in range(1, count + 1)]


def client_ids(prefix: str, count: int) -> List[str]:
    """Conventional client ids, e.g. ``w1..wW`` or ``r1..rR``."""
    return [f"{prefix}{i}" for i in range(1, count + 1)]
