"""Latency statistics used by the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

__all__ = ["percentile", "LatencyStats", "summarize"]


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of a sample list (p in [0, 100])."""
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    interpolated = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Clamp against floating-point drift so the result never leaves the
    # interval spanned by its two neighbouring samples.
    return min(max(interpolated, ordered[lo]), ordered[hi])


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(samples: Iterable[float]) -> LatencyStats:
    """Compute :class:`LatencyStats` over the given samples."""
    values: List[float] = list(samples)
    if not values:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencyStats(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        minimum=min(values),
        maximum=max(values),
    )
