"""Small shared utilities (ids, RNG, statistics)."""

from .ids import IdGenerator, client_ids, server_ids
from .rng import SeededRng
from .stats import LatencyStats, percentile, summarize

__all__ = [
    "IdGenerator",
    "client_ids",
    "server_ids",
    "SeededRng",
    "LatencyStats",
    "percentile",
    "summarize",
]
