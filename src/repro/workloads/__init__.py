"""Workload generators for the simulator and the asyncio cluster."""

from .generators import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    ScheduledOp,
    apply_closed_loop,
    apply_open_loop,
    asymmetric_write_contention,
    bursty_contention,
    read_heavy_closed_loop,
    uniform_open_loop,
    write_pairs_then_reads,
)

__all__ = [
    "ClosedLoopWorkload",
    "OpenLoopWorkload",
    "ScheduledOp",
    "apply_closed_loop",
    "apply_open_loop",
    "asymmetric_write_contention",
    "bursty_contention",
    "read_heavy_closed_loop",
    "uniform_open_loop",
    "write_pairs_then_reads",
]
