"""Workload generators for register emulations.

Workloads describe *when each client invokes which operation*; the simulator
executes them against a protocol.  Two families are provided:

* **open-loop** schedules: every operation has an explicit virtual invocation
  time, possibly overlapping across clients.  Used for contention-focused
  experiments and for reproducing specific interleavings.
* **closed-loop** schedules: each client issues a fixed sequence of
  operations back-to-back (optionally with think time).  Used for latency and
  throughput style measurements.

Values written are unique strings ``"v-<writer>-<n>"`` so that histories stay
easy to read; the protocols attach tags independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.runtime import Simulation
from ..util.rng import SeededRng

__all__ = [
    "ScheduledOp",
    "OpenLoopWorkload",
    "ClosedLoopWorkload",
    "uniform_open_loop",
    "bursty_contention",
    "asymmetric_write_contention",
    "read_heavy_closed_loop",
    "write_pairs_then_reads",
    "apply_open_loop",
    "apply_closed_loop",
]


@dataclass(frozen=True)
class ScheduledOp:
    """One open-loop operation: a client, a time, and an action."""

    client: str
    at: float
    action: str  # "read" or "write"
    value: Optional[str] = None


@dataclass
class OpenLoopWorkload:
    """A set of explicitly timed operations."""

    operations: List[ScheduledOp] = field(default_factory=list)

    def add_write(self, writer: str, at: float, value: str) -> None:
        self.operations.append(ScheduledOp(writer, at, "write", value))

    def add_read(self, reader: str, at: float) -> None:
        self.operations.append(ScheduledOp(reader, at, "read"))

    @property
    def read_count(self) -> int:
        return sum(1 for op in self.operations if op.action == "read")

    @property
    def write_count(self) -> int:
        return sum(1 for op in self.operations if op.action == "write")


@dataclass
class ClosedLoopWorkload:
    """Per-client operation sequences issued back-to-back."""

    sequences: Dict[str, List[Tuple]] = field(default_factory=dict)
    think_time: float = 0.0
    stagger: float = 0.0

    def total_operations(self) -> int:
        return sum(len(seq) for seq in self.sequences.values())


def uniform_open_loop(
    writer_ids: Sequence[str],
    reader_ids: Sequence[str],
    writes_per_writer: int,
    reads_per_reader: int,
    horizon: float,
    seed: int = 0,
) -> OpenLoopWorkload:
    """Operations spread uniformly at random over ``[0, horizon]``.

    Per-client invocation times are spaced at least a small gap apart so that
    each client's history stays well-formed even with slow operations -- the
    simulator enforces well-formedness and would reject overlapping
    invocations by the same client.
    """
    rng = SeededRng(seed)
    workload = OpenLoopWorkload()
    for w_index, writer in enumerate(writer_ids):
        times = sorted(rng.uniform(0, horizon) for _ in range(writes_per_writer))
        times = _space_out(times, min_gap=horizon / max(1, writes_per_writer) * 0.5)
        for i, at in enumerate(times):
            workload.add_write(writer, at, f"v-{writer}-{i}")
    for reader in reader_ids:
        times = sorted(rng.uniform(0, horizon) for _ in range(reads_per_reader))
        times = _space_out(times, min_gap=horizon / max(1, reads_per_reader) * 0.5)
        for at in times:
            workload.add_read(reader, at)
    return workload


def bursty_contention(
    writer_ids: Sequence[str],
    reader_ids: Sequence[str],
    bursts: int,
    burst_width: float,
    burst_gap: float,
    seed: int = 0,
) -> OpenLoopWorkload:
    """Bursts in which every writer writes and every reader reads nearly at once.

    This is the adversarial-ish workload that makes "too fast" protocols fail
    quickly: concurrent writes by different writers immediately followed by
    reads from different readers.
    """
    rng = SeededRng(seed)
    workload = OpenLoopWorkload()
    t = 1.0
    for burst in range(bursts):
        for writer in writer_ids:
            workload.add_write(
                writer, t + rng.uniform(0, burst_width), f"v-{writer}-{burst}"
            )
        for reader in reader_ids:
            workload.add_read(reader, t + burst_width + rng.uniform(0, burst_width))
            workload.add_read(
                reader, t + 2 * burst_width + rng.uniform(0, burst_width) + 0.01
            )
        t += burst_gap
    return workload


def read_heavy_closed_loop(
    writer_ids: Sequence[str],
    reader_ids: Sequence[str],
    operations_per_client: int,
    write_every: int = 5,
    think_time: float = 0.0,
) -> ClosedLoopWorkload:
    """Closed-loop workload where writers write and readers read repeatedly."""
    sequences: Dict[str, List[Tuple]] = {}
    for writer in writer_ids:
        sequences[writer] = [
            ("write", f"v-{writer}-{i}") for i in range(operations_per_client)
        ]
    for reader in reader_ids:
        sequences[reader] = [("read",) for _ in range(operations_per_client)]
    del write_every  # kept for API symmetry with mixed workloads
    return ClosedLoopWorkload(sequences=sequences, think_time=think_time, stagger=0.1)


def write_pairs_then_reads(
    writer_ids: Sequence[str],
    reader_ids: Sequence[str],
    rounds: int,
    overlap: bool = True,
) -> OpenLoopWorkload:
    """The W1/W2 then R1/R2 pattern of the paper's proofs, repeated.

    Each round issues one write per writer (concurrent when ``overlap``),
    then one read per reader.  This mirrors the executions used in the chain
    argument (two writes followed by two reads) and is the quickest way to
    surface violations in fast-write candidates.
    """
    workload = OpenLoopWorkload()
    t = 1.0
    for round_index in range(rounds):
        for i, writer in enumerate(writer_ids):
            offset = 0.0 if overlap else i * 6.0
            workload.add_write(writer, t + offset, f"v-{writer}-{round_index}")
        read_start = t + (2.0 if overlap else len(writer_ids) * 6.0 + 2.0)
        for j, reader in enumerate(reader_ids):
            workload.add_read(reader, read_start + j * 5.0)
        t = read_start + len(reader_ids) * 5.0 + 5.0
    return workload


def asymmetric_write_contention(
    writer_ids: Sequence[str],
    reader_ids: Sequence[str],
    rounds: int = 2,
    fast_writer_burst: int = 2,
    op_gap: float = 6.0,
) -> OpenLoopWorkload:
    """A workload where one writer writes much more often than the others.

    In each round the first writer issues ``fast_writer_burst`` sequential
    writes, then every other writer issues a single write, then every reader
    reads twice.  This is the pattern that exposes protocols whose writers
    order values with *local* counters (the fast-write candidates): the slow
    writer's value carries a smaller timestamp than the fast writer's earlier
    values even though it is newer in real time, and the following reads then
    contradict the real-time write order.
    """
    if not writer_ids:
        raise ValueError("need at least one writer")
    workload = OpenLoopWorkload()
    t = 1.0
    fast_writer = writer_ids[0]
    for round_index in range(rounds):
        for burst in range(fast_writer_burst):
            workload.add_write(
                fast_writer, t, f"v-{fast_writer}-{round_index}-{burst}"
            )
            t += op_gap
        for writer in writer_ids[1:]:
            workload.add_write(writer, t, f"v-{writer}-{round_index}")
            t += op_gap
        for repeat in range(2):
            for reader in reader_ids:
                workload.add_read(reader, t)
                t += op_gap / 2
        t += op_gap
    return workload


def _space_out(times: List[float], min_gap: float) -> List[float]:
    """Push times apart so consecutive entries differ by at least ``min_gap``."""
    spaced: List[float] = []
    last = None
    for t in times:
        if last is not None and t < last + min_gap:
            t = last + min_gap
        spaced.append(t)
        last = t
    return spaced


def apply_open_loop(simulation: Simulation, workload: OpenLoopWorkload) -> None:
    """Schedule an open-loop workload onto a simulation."""
    for op in workload.operations:
        if op.action == "write":
            simulation.schedule_write(op.client, op.value, op.at)
        else:
            simulation.schedule_read(op.client, op.at)


def apply_closed_loop(simulation: Simulation, workload: ClosedLoopWorkload) -> None:
    """Schedule a closed-loop workload onto a simulation."""
    for index, (client, sequence) in enumerate(sorted(workload.sequences.items())):
        simulation.schedule_closed_loop(
            client,
            sequence,
            start_at=index * workload.stagger,
            think_time=workload.think_time,
        )
