"""Cross-tier op tracing: reconstruct one op's journey through the tiers.

Every client op carries a compact trace-context id (the ``trace`` field on
:class:`repro.messages.Message` and the proxy sub-request encoding) from the
client through the proxy to the replicas and back.  Engines stamp that id on
the events they emit, so a :class:`TraceCollector` attached to the observer
hub can group events per trace and rebuild the op's span tree:

    client span (op.invoked .. op.completed)
      └── proxy span per proxy component (round.opened .. round.closed)
            └── replica span per replica component (sub.served / stale.bounce)

The tree works identically on both backends because the ids travel in frame
metadata, surviving the attempt-scoped op-id rewriting the client and proxy
perform on retries and failover.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .events import TraceEvent

__all__ = ["TraceCollector", "TIER_ORDER"]

#: Parent-to-child ordering of tiers in a span tree.
TIER_ORDER = ("client", "proxy", "replica")


class TraceCollector:
    """A hub sink that groups trace-tagged events into per-op span trees."""

    def __init__(self) -> None:
        # trace id -> events in arrival order (arrival order is causal enough
        # on the simulator and monotonic-enough on asyncio for span bounds).
        self._events: Dict[str, List[TraceEvent]] = {}

    def handle(self, event: TraceEvent) -> None:
        if event.trace is not None:
            self._events.setdefault(event.trace, []).append(event)

    # -- queries ---------------------------------------------------------------

    def trace_ids(self) -> List[str]:
        return list(self._events)

    def events_for(self, trace_id: str) -> List[TraceEvent]:
        return list(self._events.get(trace_id, ()))

    def tiers_for(self, trace_id: str) -> List[str]:
        """The distinct tiers a trace touched, in TIER_ORDER."""
        seen = {event.tier for event in self._events.get(trace_id, ())}
        return [tier for tier in TIER_ORDER if tier in seen]

    def span_tree(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Rebuild one op's client -> proxy -> replica span tree.

        Returns ``None`` for unknown trace ids.  Each node covers one
        ``(tier, component)`` pair with its event list and time bounds;
        children are the nodes of the next tier downstream.
        """
        events = self._events.get(trace_id)
        if not events:
            return None
        # Group events per (tier, component), preserving arrival order.
        spans: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for event in events:
            tier_spans = spans.setdefault(event.tier, {})
            node = tier_spans.get(event.component)
            if node is None:
                node = tier_spans[event.component] = {
                    "tier": event.tier,
                    "component": event.component,
                    "start": event.ts,
                    "end": event.ts,
                    "events": [],
                    "children": [],
                }
            node["start"] = min(node["start"], event.ts)
            node["end"] = max(node["end"], event.ts)
            node["events"].append(event.as_dict())
        # Stitch tiers into a tree: each tier's nodes become children of the
        # nearest populated tier above it.
        populated = [tier for tier in TIER_ORDER if tier in spans]
        for parent_tier, child_tier in zip(populated, populated[1:]):
            children = list(spans[child_tier].values())
            for parent in spans[parent_tier].values():
                parent["children"].extend(children)
            # Only attach each child set once even with several parents; the
            # common case is a single client component per trace.
            if len(spans[parent_tier]) > 1:
                for extra in list(spans[parent_tier].values())[1:]:
                    extra["children"] = []
        roots = list(spans[populated[0]].values())
        root = roots[0] if len(roots) == 1 else {
            "tier": populated[0], "component": "*",
            "start": min(r["start"] for r in roots),
            "end": max(r["end"] for r in roots),
            "events": [], "children": roots,
        }
        return {"trace": trace_id, "root": root}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "traces": [self.span_tree(tid) for tid in self._events],
        }

    def dump(self, path: str, indent: int = 2) -> int:
        """Write every reconstructed span tree to ``path`` as JSON.

        Returns the number of traces written.
        """
        payload = self.as_dict()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=False)
            handle.write("\n")
        return len(payload["traces"])

    # -- pytest helper ---------------------------------------------------------

    def format(self, trace_id: Optional[str] = None, limit: int = 5) -> str:
        """Human-readable span trees, for attaching to failing assertions.

        Use as ``assert verdict.all_atomic, collector.format()`` so a failing
        equivalence or fuzzer run ships the op journeys that led to the bad
        state instead of a bare ``False``.
        """
        ids = [trace_id] if trace_id is not None else list(self._events)[:limit]
        lines: List[str] = []
        for tid in ids:
            tree = self.span_tree(tid)
            if tree is None:
                lines.append(f"trace {tid}: <no events>")
                continue
            lines.append(f"trace {tid}:")
            _format_node(tree["root"], lines, depth=1)
        if trace_id is None and len(self._events) > limit:
            lines.append(f"... {len(self._events) - limit} more traces")
        return "\n".join(lines) if lines else "<no traces collected>"


def _format_node(node: Dict[str, Any], lines: List[str], depth: int) -> None:
    pad = "  " * depth
    kinds = ", ".join(event["kind"] for event in node["events"])
    lines.append(
        f"{pad}{node['tier']}/{node['component']} "
        f"[{node['start']:.6g} .. {node['end']:.6g}] {kinds}"
    )
    for child in node["children"]:
        _format_node(child, lines, depth + 1)
