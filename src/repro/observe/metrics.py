"""Counters, gauges, and fixed-bucket latency histograms.

The registry is keyed by ``(tier, component, name)`` so one registry serves a
whole cluster run: every client, proxy, and replica writes its own series and
``snapshot()`` aggregates them per tier for reporting.  Buckets are fixed and
geometric so histograms from different components (and different runs) merge
exactly; the span is wide enough to cover both simulator virtual-time units
and asyncio seconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import (
    AUTOSCALE_ACTION,
    BATCH_CUT,
    CACHE_HIT,
    CACHE_INVALIDATE,
    CACHE_MISS,
    DRAIN_COMPLETED,
    DRAIN_RANGE_CLOSED,
    DRAIN_RANGE_OPENED,
    DRAIN_STARTED,
    FAILOVER_HOP,
    FRAME_RECEIVED,
    FRAME_SENT,
    LEASE_EXPIRED,
    LEASE_GRANTED,
    OP_COMPLETED,
    OP_FAILED,
    OP_INVOKED,
    ROUND_CLOSED,
    ROUND_OPENED,
    ROUND_REPLAYED,
    STALE_BOUNCE,
    SUB_SERVED,
    TIMER_ARMED,
    TIMER_CANCELLED,
    TIMER_FIRED,
    TraceEvent,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MetricsObserver",
    "validate_metrics_snapshot",
    "REQUIRED_TIER_KEYS",
]

# Geometric bucket upper bounds: 1e-5 .. ~5.5e6 doubling each step.  Asyncio
# op latencies land around 1e-3..1 s, simulator ones around 1..1e3 virtual
# units; both fit with room on either side.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-5 * (2.0 ** i) for i in range(40))


class Histogram:
    """A fixed-bucket histogram with exact merge and estimated percentiles."""

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # counts[i] tallies values <= bounds[i]; the final slot is overflow.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (other.minimum if self.minimum is None
                            else min(self.minimum, other.minimum))
        if other.maximum is not None:
            self.maximum = (other.maximum if self.maximum is None
                            else max(self.maximum, other.maximum))

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile by interpolating within a bucket."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = (p / 100.0) * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = (self.bounds[i] if i < len(self.bounds)
                         else (self.maximum or lower))
                frac = (target - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * frac
                break
        else:  # pragma: no cover - counts always sum to self.count
            estimate = self.maximum or 0.0
        # Clamp to the observed range: interpolation never beats exact bounds.
        if self.minimum is not None:
            estimate = max(estimate, self.minimum)
        if self.maximum is not None:
            estimate = min(estimate, self.maximum)
        return estimate

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by ``(tier, component, name)``."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str, str], float] = {}
        self._gauges: Dict[Tuple[str, str, str], float] = {}
        self._histograms: Dict[Tuple[str, str, str], Histogram] = {}

    # -- writers --------------------------------------------------------------

    def counter(self, tier: str, component: str, name: str, delta: float = 1) -> None:
        key = (tier, component, name)
        self._counters[key] = self._counters.get(key, 0) + delta

    def declare_counter(self, tier: str, component: str, name: str) -> None:
        """Ensure a counter exists (at zero) so snapshots have stable keys."""
        self._counters.setdefault((tier, component, name), 0)

    def gauge(self, tier: str, component: str, name: str, value: float) -> None:
        self._gauges[(tier, component, name)] = value

    def histogram(self, tier: str, component: str, name: str) -> Histogram:
        key = (tier, component, name)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        return hist

    def observe(self, tier: str, component: str, name: str, value: float) -> None:
        self.histogram(tier, component, name).observe(value)

    # -- readers --------------------------------------------------------------

    def counter_value(self, tier: str, name: str) -> float:
        """Sum of one counter across every component of a tier."""
        return sum(v for (t, _c, n), v in self._counters.items()
                   if t == tier and n == name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one (same keys add)."""
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        self._gauges.update(other._gauges)
        for key, hist in other._histograms.items():
            tier, component, name = key
            self.histogram(tier, component, name).merge(hist)

    def snapshot(self) -> Dict[str, Any]:
        """Aggregate all series per tier: counters sum, histograms merge."""
        tiers: Dict[str, Any] = {}

        def tier_entry(tier: str) -> Dict[str, Any]:
            return tiers.setdefault(
                tier, {"counters": {}, "gauges": {}, "histograms": {}}
            )

        for (tier, _component, name), value in sorted(self._counters.items()):
            counters = tier_entry(tier)["counters"]
            counters[name] = counters.get(name, 0) + value
        for (tier, component, name), value in sorted(self._gauges.items()):
            tier_entry(tier)["gauges"][f"{component}.{name}"] = value
        merged: Dict[Tuple[str, str], Histogram] = {}
        for (tier, _component, name), hist in sorted(self._histograms.items()):
            target = merged.get((tier, name))
            if target is None:
                target = merged[(tier, name)] = Histogram(hist.bounds)
            target.merge(hist)
        for (tier, name), hist in merged.items():
            tier_entry(tier)["histograms"][name] = hist.as_dict()
        return tiers

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


# -- event -> metric translation ----------------------------------------------

# Counters every component of a tier is expected to report even when zero;
# seeded on the first event from a (tier, component) so snapshots keep a
# stable schema regardless of what a particular run exercised.
_BASELINE_COUNTERS: Dict[str, Tuple[str, ...]] = {
    "client": (
        "ops_invoked", "ops_completed", "ops_failed",
        "rounds_opened", "stale_replays", "proxy_failovers",
        "frames_sent", "frames_received",
        "timers_armed", "timers_fired", "timers_cancelled",
    ),
    "proxy": (
        "rounds_opened", "rounds_closed", "stale_replays",
        "cache_hits", "cache_misses", "cache_invalidations",
        "leases_expired",
        "frames_sent", "frames_received",
        "timers_armed", "timers_fired", "timers_cancelled",
    ),
    "replica": (
        "subs_served", "stale_bounces",
        "leases_granted", "leases_expired",
        "frames_sent", "frames_received",
    ),
    "control": (
        "drains_started", "drains_completed", "ranges_drained",
        "autoscale_actions", "frames_sent", "frames_received",
        "timers_armed", "timers_fired", "timers_cancelled",
    ),
}

# Histograms seeded empty per tier for the same schema-stability reason.
_BASELINE_HISTOGRAMS: Dict[str, Tuple[str, ...]] = {
    "client": ("op_latency", "batch_size"),
    "proxy": ("op_latency", "batch_size"),
    "replica": ("batch_size",),
    "control": ("cutover_pause",),
}

_COUNTER_FOR_KIND = {
    OP_INVOKED: "ops_invoked",
    OP_COMPLETED: "ops_completed",
    OP_FAILED: "ops_failed",
    ROUND_OPENED: "rounds_opened",
    ROUND_CLOSED: "rounds_closed",
    ROUND_REPLAYED: "stale_replays",
    FRAME_SENT: "frames_sent",
    FRAME_RECEIVED: "frames_received",
    TIMER_ARMED: "timers_armed",
    TIMER_FIRED: "timers_fired",
    TIMER_CANCELLED: "timers_cancelled",
    STALE_BOUNCE: "stale_bounces",
    FAILOVER_HOP: "proxy_failovers",
    SUB_SERVED: "subs_served",
    CACHE_HIT: "cache_hits",
    CACHE_MISS: "cache_misses",
    CACHE_INVALIDATE: "cache_invalidations",
    LEASE_GRANTED: "leases_granted",
    LEASE_EXPIRED: "leases_expired",
    DRAIN_STARTED: "drains_started",
    DRAIN_COMPLETED: "drains_completed",
    DRAIN_RANGE_CLOSED: "ranges_drained",
    AUTOSCALE_ACTION: "autoscale_actions",
}


class MetricsObserver:
    """A hub sink that folds :class:`TraceEvent` streams into a registry.

    Op latency is measured here, not in the engines: the first ``op.invoked``
    (client) or ``round.opened`` (proxy) for an op records its start
    timestamp, and the matching completion event turns the difference into an
    ``op_latency`` histogram sample.  Engines therefore stay clockless.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._op_starts: Dict[Tuple[str, str, str], float] = {}
        self._range_starts: Dict[Tuple[str, str, Any, Any], float] = {}
        self._seeded: set = set()

    def handle(self, event: TraceEvent) -> None:
        registry = self.registry
        scope = (event.tier, event.component)
        if scope not in self._seeded:
            self._seeded.add(scope)
            for name in _BASELINE_COUNTERS.get(event.tier, ()):
                registry.declare_counter(event.tier, event.component, name)
            for name in _BASELINE_HISTOGRAMS.get(event.tier, ()):
                registry.histogram(event.tier, event.component, name)

        counter = _COUNTER_FOR_KIND.get(event.kind)
        if counter is not None:
            registry.counter(event.tier, event.component, counter)

        if event.kind == BATCH_CUT:
            size = event.attrs.get("size")
            if size is not None:
                registry.observe(event.tier, event.component, "batch_size", size)
        elif event.kind == OP_INVOKED and event.op_id is not None:
            self._op_starts.setdefault(
                (event.tier, event.component, event.op_id), event.ts)
        elif event.kind == ROUND_OPENED and event.tier == "proxy" \
                and event.op_id is not None:
            self._op_starts.setdefault(
                (event.tier, event.component, event.op_id), event.ts)
        elif event.kind in (OP_COMPLETED, OP_FAILED, ROUND_CLOSED) \
                and event.op_id is not None:
            start = self._op_starts.pop(
                (event.tier, event.component, event.op_id), None)
            if start is not None:
                registry.observe(
                    event.tier, event.component, "op_latency", event.ts - start)
        elif event.kind == DRAIN_RANGE_OPENED:
            # The open->close gap of one drained range is the cutover pause
            # that range imposed on its keys: the drain holds them fenced
            # from transfer start until install completes.
            self._range_starts[(event.tier, event.component,
                               event.attrs.get("mig"),
                               event.attrs.get("range"))] = event.ts
        elif event.kind == DRAIN_RANGE_CLOSED:
            start = self._range_starts.pop(
                (event.tier, event.component,
                 event.attrs.get("mig"), event.attrs.get("range")), None)
            if start is not None:
                registry.observe(
                    event.tier, event.component, "cutover_pause",
                    event.ts - start)


# -- snapshot schema check ----------------------------------------------------

REQUIRED_TIER_KEYS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "client": {
        "counters": ("ops_invoked", "ops_completed", "stale_replays",
                     "proxy_failovers", "frames_sent", "frames_received",
                     "timers_armed", "timers_fired", "timers_cancelled"),
        "histograms": ("op_latency", "batch_size"),
    },
    "proxy": {
        "counters": ("rounds_opened", "rounds_closed", "stale_replays",
                     "cache_hits", "cache_misses", "cache_invalidations",
                     "leases_expired",
                     "frames_sent", "frames_received",
                     "timers_armed", "timers_fired", "timers_cancelled"),
        "histograms": ("op_latency", "batch_size"),
    },
    "replica": {
        "counters": ("subs_served", "stale_bounces",
                     "leases_granted", "leases_expired",
                     "frames_sent", "frames_received"),
        "histograms": (),
    },
    "control": {
        "counters": ("drains_started", "drains_completed", "ranges_drained",
                     "autoscale_actions"),
        "histograms": ("cutover_pause",),
    },
}

_HISTOGRAM_KEYS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")


def validate_metrics_snapshot(
    snapshot: Dict[str, Any],
    require_tiers: Sequence[str] = ("client", "replica"),
) -> None:
    """Raise ``ValueError`` listing every schema violation in a snapshot.

    Used by the CI artifact check so exporter drift (a renamed counter, a
    dropped percentile key) fails fast instead of silently producing holes in
    BENCH_kv_metrics.json.
    """
    problems: List[str] = []
    for tier in require_tiers:
        if tier not in snapshot:
            problems.append(f"missing tier {tier!r}")
    for tier, entry in snapshot.items():
        spec = REQUIRED_TIER_KEYS.get(tier)
        if spec is None:
            continue
        counters = entry.get("counters", {})
        for name in spec["counters"]:
            if name not in counters:
                problems.append(f"{tier}: missing counter {name!r}")
        histograms = entry.get("histograms", {})
        for name in spec["histograms"]:
            hist = histograms.get(name)
            if hist is None:
                problems.append(f"{tier}: missing histogram {name!r}")
                continue
            for key in _HISTOGRAM_KEYS:
                if key not in hist:
                    problems.append(f"{tier}: histogram {name!r} missing {key!r}")
    if problems:
        raise ValueError("metrics snapshot schema: " + "; ".join(problems))
