"""Structured engine events and the observer seam.

The engines (:mod:`repro.kvstore.engine`) are pure state machines: they never
read a clock or touch a transport.  Observation follows the same discipline --
an engine is handed an :class:`EngineObserver` at construction and calls
``observer.emit(kind, ...)`` at protocol-significant points (round opened,
frame sent, stale bounce, ...).  The observer is supplied by the *adapter*,
which also owns the timestamp source, so the same engine run produces
virtual-clock timestamps on the simulator and wall-clock timestamps on
asyncio without the engine knowing the difference.

Emitting events must never perturb the engine's effect stream: observers only
record, they do not return anything the engine acts on.  The cross-backend
effect-trace equivalence tests run with and without observers attached to
enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "OP_INVOKED",
    "OP_COMPLETED",
    "OP_FAILED",
    "ROUND_OPENED",
    "ROUND_CLOSED",
    "ROUND_REPLAYED",
    "FRAME_SENT",
    "FRAME_RECEIVED",
    "TIMER_ARMED",
    "TIMER_FIRED",
    "TIMER_CANCELLED",
    "STALE_BOUNCE",
    "FAILOVER_HOP",
    "BATCH_CUT",
    "SUB_SERVED",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_INVALIDATE",
    "LEASE_GRANTED",
    "LEASE_EXPIRED",
    "DRAIN_STARTED",
    "DRAIN_COMPLETED",
    "DRAIN_RANGE_OPENED",
    "DRAIN_RANGE_CLOSED",
    "AUTOSCALE_ACTION",
    "EVENT_KINDS",
    "TraceEvent",
    "EngineObserver",
    "NULL_OBSERVER",
    "ObserverHub",
]

# -- event taxonomy -----------------------------------------------------------
#
# Op lifecycle (client tier): an application call enters the engine and later
# resolves.  Round lifecycle (client + proxy tiers): one quorum round of an
# op, possibly replayed after a stale-shard bounce.  Frame/timer events are
# the engine <-> adapter boundary; timer armed/fired/cancelled are emitted by
# the adapter because only it knows when a scheduled callback actually runs.

OP_INVOKED = "op.invoked"          # client accepted an application op
OP_COMPLETED = "op.completed"      # op resolved with a value
OP_FAILED = "op.failed"            # op resolved with an error
ROUND_OPENED = "round.opened"      # a quorum round was dispatched
ROUND_CLOSED = "round.closed"      # a proxy finished serving a sub-op
ROUND_REPLAYED = "round.replayed"  # stale-shard bounce forced a replay
FRAME_SENT = "frame.sent"          # a wire frame left this component
FRAME_RECEIVED = "frame.received"  # a wire frame arrived at this component
TIMER_ARMED = "timer.armed"        # adapter scheduled a StartTimer effect
TIMER_FIRED = "timer.fired"        # the scheduled callback ran
TIMER_CANCELLED = "timer.cancelled"  # CancelTimer / re-arm / shutdown
STALE_BOUNCE = "stale.bounce"      # replica fenced a sub-op on epoch
FAILOVER_HOP = "failover.hop"      # client abandoned a proxy for the next
BATCH_CUT = "batch.cut"            # a batch was sealed for dispatch
SUB_SERVED = "sub.served"          # replica served one sub-op

# Read-cache lifecycle.  Hit/miss/invalidate are emitted by the proxy's
# read cache; lease granted/expired by both sides of the lease protocol
# (the proxy self-expires entries before the server-side deadline, so one
# logical lease can produce an expiry event on each tier).
CACHE_HIT = "cache.hit"            # proxy served a read from its cache
CACHE_MISS = "cache.miss"          # proxy had to run the quorum round
CACHE_INVALIDATE = "cache.invalidate"  # a cached entry was dropped
LEASE_GRANTED = "lease.granted"    # a read lease was registered
LEASE_EXPIRED = "lease.expired"    # a lease hit its deadline unreleased

# Control-plane lifecycle (emitted by the ControlPlaneEngine): one started/
# completed pair per migration, one opened/closed pair per drained key range
# (their timestamp gap is the range's cutover pause), and one action event
# per rebalance the autoscaler triggers.
DRAIN_STARTED = "drain.started"            # a migration began draining
DRAIN_COMPLETED = "drain.completed"        # a migration finished
DRAIN_RANGE_OPENED = "drain.range.opened"  # one key range entered transfer
DRAIN_RANGE_CLOSED = "drain.range.closed"  # the range installed on receivers
AUTOSCALE_ACTION = "autoscale.action"      # the autoscaler triggered a move

EVENT_KINDS = (
    OP_INVOKED, OP_COMPLETED, OP_FAILED,
    ROUND_OPENED, ROUND_CLOSED, ROUND_REPLAYED,
    FRAME_SENT, FRAME_RECEIVED,
    TIMER_ARMED, TIMER_FIRED, TIMER_CANCELLED,
    STALE_BOUNCE, FAILOVER_HOP, BATCH_CUT, SUB_SERVED,
    CACHE_HIT, CACHE_MISS, CACHE_INVALIDATE, LEASE_GRANTED, LEASE_EXPIRED,
    DRAIN_STARTED, DRAIN_COMPLETED,
    DRAIN_RANGE_OPENED, DRAIN_RANGE_CLOSED, AUTOSCALE_ACTION,
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation, stamped with tier/component/timestamp.

    ``trace`` is the cross-tier trace-context id carried in frame metadata;
    events that belong to a specific application op carry it so a
    :class:`~repro.observe.trace.TraceCollector` can stitch the op's journey
    across tiers.  ``attrs`` holds kind-specific detail (batch size, timer
    id, destination, ...).
    """

    ts: float
    tier: str
    component: str
    kind: str
    op_id: Optional[str] = None
    key: Optional[str] = None
    trace: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ts": self.ts,
            "tier": self.tier,
            "component": self.component,
            "kind": self.kind,
        }
        if self.op_id is not None:
            out["op_id"] = self.op_id
        if self.key is not None:
            out["key"] = self.key
        if self.trace is not None:
            out["trace"] = self.trace
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class EngineObserver:
    """The observer protocol engines call; the base class observes nothing.

    Engines hold exactly one of these and call :meth:`emit` with an event
    kind plus optional op/key/trace correlation ids and kind-specific
    attributes.  The default instance is a no-op so un-instrumented engines
    pay one cheap method call per event and nothing else.
    """

    def emit(
        self,
        event: str,
        *,
        op_id: Optional[str] = None,
        key: Optional[str] = None,
        trace: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Record one event.  The no-op base discards it.

        The first parameter is named ``event`` (not ``kind``) so ``kind``
        stays available as an attribute -- frame events use it for the
        frame kind and op events for the operation kind.
        """


#: Shared no-op observer used as the default for every engine.
NULL_OBSERVER = EngineObserver()


class _ScopedObserver(EngineObserver):
    """An observer bound to one (tier, component); stamps and publishes."""

    __slots__ = ("_hub", "_tier", "_component")

    def __init__(self, hub: "ObserverHub", tier: str, component: str) -> None:
        self._hub = hub
        self._tier = tier
        self._component = component

    def emit(
        self,
        event: str,
        *,
        op_id: Optional[str] = None,
        key: Optional[str] = None,
        trace: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        self._hub.publish(TraceEvent(
            ts=self._hub.clock(),
            tier=self._tier,
            component=self._component,
            kind=event,
            op_id=op_id,
            key=key,
            trace=trace,
            attrs=attrs,
        ))


class ObserverHub:
    """Fan-out point owned by a backend run.

    The backend constructs one hub with its clock (``events.clock.now`` on
    the simulator, ``time.monotonic`` on asyncio), registers sinks
    (:class:`~repro.observe.metrics.MetricsObserver`,
    :class:`~repro.observe.trace.TraceCollector`), and hands each engine a
    :meth:`scoped` observer that stamps tier, component, and timestamp before
    publishing.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._sinks: List[Any] = []

    def add_sink(self, sink: Any) -> Any:
        """Register a sink (an object with ``handle(event)``); returns it."""
        if sink is not None and sink not in self._sinks:
            self._sinks.append(sink)
        return sink

    def scoped(self, tier: str, component: str) -> EngineObserver:
        """An observer that stamps every event with ``(tier, component)``."""
        return _ScopedObserver(self, tier, component)

    def publish(self, event: TraceEvent) -> None:
        for sink in self._sinks:
            sink.handle(event)
