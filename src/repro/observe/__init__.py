"""Transport-neutral observability for the kvstore engines.

The package is deliberately free of ``asyncio`` and ``repro.sim`` imports so
the sans-I/O engines can depend on it without breaking the transport import
ban: engines emit structured :class:`TraceEvent` records through an
:class:`EngineObserver` handed to them by the adapter, and the adapter also
supplies the timestamp source (the virtual clock on the simulator,
``time.monotonic`` on asyncio).

Layers:

* :mod:`repro.observe.events` -- the event taxonomy, the observer protocol,
  and the :class:`ObserverHub` fan-out that stamps tier/component/timestamp.
* :mod:`repro.observe.metrics` -- counters, gauges, and fixed-bucket latency
  histograms keyed by ``(tier, component, name)``, with snapshot/merge and a
  JSON exporter shared by the benchmarks and the CLI.
* :mod:`repro.observe.trace` -- cross-tier op tracing: a collector that
  groups trace-tagged events into per-op client -> proxy -> replica span
  trees and dumps them as JSON or human-readable text.
"""

from .events import (
    BATCH_CUT,
    FAILOVER_HOP,
    FRAME_RECEIVED,
    FRAME_SENT,
    NULL_OBSERVER,
    OP_COMPLETED,
    OP_FAILED,
    OP_INVOKED,
    ROUND_CLOSED,
    ROUND_OPENED,
    ROUND_REPLAYED,
    STALE_BOUNCE,
    SUB_SERVED,
    TIMER_ARMED,
    TIMER_CANCELLED,
    TIMER_FIRED,
    EngineObserver,
    ObserverHub,
    TraceEvent,
)
from .metrics import (
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    validate_metrics_snapshot,
)
from .trace import TraceCollector

__all__ = [
    "BATCH_CUT",
    "FAILOVER_HOP",
    "FRAME_RECEIVED",
    "FRAME_SENT",
    "NULL_OBSERVER",
    "OP_COMPLETED",
    "OP_FAILED",
    "OP_INVOKED",
    "ROUND_CLOSED",
    "ROUND_OPENED",
    "ROUND_REPLAYED",
    "STALE_BOUNCE",
    "SUB_SERVED",
    "TIMER_ARMED",
    "TIMER_CANCELLED",
    "TIMER_FIRED",
    "EngineObserver",
    "ObserverHub",
    "TraceEvent",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "validate_metrics_snapshot",
    "TraceCollector",
]
