"""Message envelopes and frames, shared by every transport.

This module is deliberately transport-neutral: the simulator delivers these
objects directly, the asyncio codec (:mod:`repro.asyncio_net.codec`) puts
them on the wire as length-prefixed JSON, and the sans-I/O kvstore engines
(:mod:`repro.kvstore.engine`) consume and emit them without knowing which
transport is underneath.  (It lived at ``repro.sim.messages`` before the
engine extraction; that path remains as a re-export shim.)

Besides the plain :class:`Message` envelope this module defines the **batch
frame** used by the sharded key-value store (:mod:`repro.kvstore`): several
sub-requests destined for the same server are packed into one ``"batch"``
message and answered with one ``"batch-ack"``, amortizing per-message
overhead (framing, delivery scheduling, syscalls on the asyncio transport)
across every operation coalesced into the round.

Since the placement layer decoupled shards from replica groups, one group
server multiplexes the per-key registers of *many* shards, so every
sub-request is **shard-tagged**: it names the shard it believes owns its key
and the per-shard epoch it resolved against (:class:`SubRequest`).  Servers
fence requests whose epoch is stale -- the mechanism that makes live
rebalancing (``ShardMap.resize`` / ``move_shard``) safe under concurrent
client load.

The **proxy frames** serve the site-local ingress tier
(:mod:`repro.kvstore.proxy`): a client packs the quorum rounds it has in
flight into one ``"proxy"`` frame for its proxy (:class:`ProxySubRequest` --
no shard tag: routing is the proxy's job), and the proxy answers each round
with a ``"proxy-ack"`` frame carrying the whole quorum of replica replies at
once (:class:`ProxySubReply`).  Between the two, the proxy merges rounds
*across client connections* into shared shard-tagged batch frames, which is
where the replica-side message-cost drop comes from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

__all__ = [
    "Message",
    "SubRequest",
    "BATCH_KIND",
    "BATCH_ACK_KIND",
    "make_batch",
    "unpack_batch",
    "make_batch_ack",
    "unpack_batch_ack",
    "PROXY_KIND",
    "PROXY_ACK_KIND",
    "ProxySubRequest",
    "ProxySubReply",
    "make_proxy_request",
    "unpack_proxy_request",
    "make_proxy_ack",
    "unpack_proxy_ack",
    "VIEW_PUSH_KIND",
    "VIEW_PUSH_ACK_KIND",
    "make_view_push",
    "unpack_view_push",
    "DRAIN_FENCE_KIND",
    "DRAIN_FENCE_ACK_KIND",
    "DRAIN_HOST_KIND",
    "DRAIN_TRANSFER_KIND",
    "DRAIN_TRANSFER_ACK_KIND",
    "DRAIN_INSTALL_KIND",
    "DRAIN_COMPLETE_KIND",
    "DRAIN_ACK_KIND",
    "make_drain_fence",
    "unpack_drain_fence",
    "make_drain_host",
    "unpack_drain_host",
    "make_drain_transfer",
    "unpack_drain_transfer",
    "make_drain_install",
    "unpack_drain_install",
    "make_drain_complete",
    "unpack_drain_complete",
    "LEASE_GRANT_KIND",
    "LEASE_INVALIDATE_KIND",
    "LEASE_RELEASE_KIND",
    "DEFAULT_LEASE_TTL",
    "make_lease_grant",
    "unpack_lease_grant",
    "make_lease_invalidate",
    "unpack_lease_invalidate",
    "make_lease_release",
    "unpack_lease_release",
]

_message_counter = itertools.count(1)


@dataclass
class Message:
    """A network message.

    Attributes:
        sender: id of the sending process.
        receiver: id of the destination process.
        kind: message kind, e.g. ``"read"``, ``"write"``, ``"READACK"``,
            ``"WRITEACK"`` (following the names in Algorithms 1 and 2).
        payload: protocol-specific dictionary.
        op_id: the client operation this message belongs to, if any.
        round_trip: 1-based index of the round-trip within the operation.
        msg_id: globally unique message id (assigned automatically).
        trace: cross-tier trace-context id.  Unlike ``op_id`` -- which both
            the client and the proxy rewrite to attempt-scoped ids on retry
            and failover -- the trace id is stamped once when the application
            op enters the system and carried verbatim through every tier, so
            observability tooling can stitch one op's full journey.  Peers
            that predate the field simply omit it (decoders default to
            ``None``).
    """

    sender: str
    receiver: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    op_id: Optional[str] = None
    round_trip: int = 0
    msg_id: int = field(default_factory=lambda: next(_message_counter))
    trace: Optional[str] = None

    def reply(self, kind: str, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Construct a reply addressed back to the sender, tagged with the
        same operation id, round-trip index, and trace context."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            kind=kind,
            payload=payload if payload is not None else {},
            op_id=self.op_id,
            round_trip=self.round_trip,
            trace=self.trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.receiver} {self.kind} "
            f"op={self.op_id} rt={self.round_trip})"
        )


# -- batch frames (repro.kvstore) ----------------------------------------------

#: Kind of a request frame packing several sub-requests for one server.
BATCH_KIND = "batch"
#: Kind of the reply frame carrying the sub-replies of one batch.
BATCH_ACK_KIND = "batch-ack"


class SubRequest(NamedTuple):
    """One sub-request of a batch frame: a keyed message plus its route tag.

    ``shard`` and ``epoch`` are the client's belief about the key's owner:
    the shard it resolved through its hash ring and that shard's epoch at
    resolution time.  A multiplexed group server fences the sub-request when
    the belief is stale (shard not hosted, or epoch superseded by a resize or
    move), bouncing it back so the client re-resolves.  ``shard=None`` (the
    legacy single-shard form) is never considered fresh by a group server.

    ``lease`` marks a sub-request that belongs to a *cache fill* of the
    sending proxy's read cache; its value is the fill's **nonce**, a string
    unique to the cache entry being filled.  On a non-mutating sub it asks
    the server to grant a read lease for the key (the grant rides back as a
    separate ``"lease-grant"`` frame echoing the nonce, so the proxy can
    tie the grant to the exact fill that requested it), and on a mutating
    sub (the fill's writeback round) it exempts the sub from deferral
    against the *sender's own* lease only -- a fill writeback can only
    re-write a tag the sender's lease already covers, so deferring it
    against that lease would deadlock the fill, but leases held by *other*
    proxies still defer it like any write.  The field is omitted from the
    wire when unset, keeping legacy frames byte-identical.
    """

    key: str
    message: Message
    shard: Optional[str] = None
    epoch: int = 0
    lease: Optional[str] = None


#: What callers may pass to :func:`make_batch`: full route-tagged sub-requests
#: or bare ``(key, message)`` pairs (coerced to untagged :class:`SubRequest`).
SubRequestLike = Union[SubRequest, Tuple[str, Message]]


def _coerce_sub(entry: SubRequestLike) -> SubRequest:
    if isinstance(entry, SubRequest):
        return entry
    key, message = entry
    return SubRequest(key, message)


def _encode_sub(key: str, message: Message) -> Dict[str, Any]:
    entry = {
        "key": key,
        "sender": message.sender,
        "kind": message.kind,
        "payload": message.payload,
        "op_id": message.op_id,
        "round_trip": message.round_trip,
    }
    if message.trace is not None:
        entry["trace"] = message.trace
    return entry


def _encode_sub_request(sub: SubRequest) -> Dict[str, Any]:
    entry = _encode_sub(sub.key, sub.message)
    if sub.shard is not None:
        entry["shard"] = sub.shard
        entry["epoch"] = sub.epoch
    if sub.lease is not None:
        entry["lease"] = sub.lease
    return entry


def _decode_message(receiver: str, entry: Dict[str, Any]) -> Message:
    return Message(
        sender=entry["sender"],
        receiver=receiver,
        kind=entry["kind"],
        payload=entry.get("payload", {}),
        op_id=entry.get("op_id"),
        round_trip=entry.get("round_trip", 0),
        trace=entry.get("trace"),
    )


def _decode_sub(receiver: str, entry: Dict[str, Any]) -> SubRequest:
    return SubRequest(
        key=entry["key"],
        message=_decode_message(receiver, entry),
        shard=entry.get("shard"),
        epoch=entry.get("epoch", 0),
        lease=entry.get("lease"),
    )


def make_batch(
    sender: str, receiver: str, sub_messages: Sequence[SubRequestLike]
) -> Message:
    """Pack sub-requests into one batch frame for ``receiver``.

    Each sub-message keeps its own ``op_id``/``round_trip`` so replies can be
    routed back to the operation that issued it; the ``key`` names the
    register the sub-message addresses and the optional ``shard``/``epoch``
    tag names the owning shard the client resolved (see :class:`SubRequest`).
    """
    if not sub_messages:
        raise ValueError("a batch frame must contain at least one sub-message")
    return Message(
        sender=sender,
        receiver=receiver,
        kind=BATCH_KIND,
        payload={
            "ops": [_encode_sub_request(_coerce_sub(sub)) for sub in sub_messages]
        },
    )


def unpack_batch(message: Message) -> List[SubRequest]:
    """Inverse of :func:`make_batch`: the route-tagged sub-requests."""
    if message.kind != BATCH_KIND:
        raise ValueError(f"not a batch frame: kind={message.kind!r}")
    return [_decode_sub(message.receiver, entry) for entry in message.payload["ops"]]


def make_batch_ack(
    request: Message, sub_replies: Sequence[Tuple[str, Optional[Message]]]
) -> Message:
    """Pack the per-sub-request replies of one batch into one ack frame.

    ``sub_replies`` pairs each key with the reply the per-key server logic
    produced (``None`` entries -- a logic that chose not to reply -- are
    preserved positionally as ``null`` so the client can account for them).
    """
    entries: List[Optional[Dict[str, Any]]] = []
    for key, reply in sub_replies:
        entries.append(None if reply is None else _encode_sub(key, reply))
    return Message(
        sender=request.receiver,
        receiver=request.sender,
        kind=BATCH_ACK_KIND,
        payload={"acks": entries},
        op_id=request.op_id,
        round_trip=request.round_trip,
    )


def unpack_batch_ack(message: Message) -> List[Tuple[str, Optional[Message]]]:
    """Inverse of :func:`make_batch_ack`: ``(key, sub-reply | None)`` pairs."""
    if message.kind != BATCH_ACK_KIND:
        raise ValueError(f"not a batch ack frame: kind={message.kind!r}")
    pairs: List[Tuple[str, Optional[Message]]] = []
    for entry in message.payload["acks"]:
        if entry is None:
            pairs.append(("", None))
        else:
            pairs.append((entry["key"], _decode_message(message.receiver, entry)))
    return pairs


# -- proxy frames (repro.kvstore.proxy) ----------------------------------------

#: Kind of a client -> proxy frame packing several forwarded quorum rounds.
PROXY_KIND = "proxy"
#: Kind of a proxy -> client frame carrying completed rounds' quorum replies.
PROXY_ACK_KIND = "proxy-ack"


class ProxySubRequest(NamedTuple):
    """One quorum round forwarded through the ingress proxy.

    Unlike :class:`SubRequest` there is no (shard, epoch) tag: resolving the
    key against the ring is the *proxy's* job (its cached shard-map view),
    which is what lets the proxy absorb stale-epoch bounces without the
    client ever noticing a live resize.  ``op_kind`` ("read" / "write") is
    what the proxy's :class:`~repro.kvstore.proxy.ReadRoutingPolicy` keys on;
    ``kind``/``payload``/``per_server`` are the protocol round exactly as the
    per-key client generator yielded it, and ``wait_for`` is its explicit ack
    threshold (``None`` means the owner group's quorum size, resolved by the
    proxy so a client with a stale view cannot under-wait).  ``trace`` is the
    op's cross-tier trace-context id (see :class:`Message`); the proxy stamps
    it on the replica-bound sub-messages it fans out.
    """

    key: str
    op_kind: str
    kind: str
    payload: Dict[str, Any]
    op_id: str
    round_trip: int
    wait_for: Optional[int] = None
    per_server: Optional[Dict[str, Dict[str, Any]]] = None
    trace: Optional[str] = None

    def payload_for(self, server_id: str) -> Dict[str, Any]:
        if self.per_server and server_id in self.per_server:
            return self.per_server[server_id]
        return self.payload


class ProxySubReply(NamedTuple):
    """The completed round for one forwarded sub-request.

    ``replies`` is the full quorum the proxy collected, each reply keeping
    the *replica* as its sender (protocols count distinct servers and read
    crucial info off ``reply.sender``).  ``error`` is set instead of replies
    when the proxy gave up (e.g. the shard map never converged within
    :data:`~repro.kvstore.batching.MAX_STALE_RETRIES` replays).
    """

    op_id: str
    round_trip: int
    replies: Tuple[Message, ...] = ()
    error: Optional[str] = None


def _encode_proxy_sub(sub: ProxySubRequest) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "key": sub.key,
        "op_kind": sub.op_kind,
        "kind": sub.kind,
        "payload": sub.payload,
        "op_id": sub.op_id,
        "round_trip": sub.round_trip,
    }
    if sub.wait_for is not None:
        entry["wait_for"] = sub.wait_for
    if sub.per_server:
        entry["per_server"] = sub.per_server
    if sub.trace is not None:
        entry["trace"] = sub.trace
    return entry


def _decode_proxy_sub(entry: Dict[str, Any]) -> ProxySubRequest:
    return ProxySubRequest(
        key=entry["key"],
        op_kind=entry["op_kind"],
        kind=entry["kind"],
        payload=entry.get("payload", {}),
        op_id=entry["op_id"],
        round_trip=entry.get("round_trip", 0),
        wait_for=entry.get("wait_for"),
        per_server=entry.get("per_server"),
        trace=entry.get("trace"),
    )


def make_proxy_request(
    sender: str, receiver: str, subs: Sequence[ProxySubRequest]
) -> Message:
    """Pack forwarded rounds into one proxy frame (client -> proxy).

    The frame's ``sender`` is the client's identity; the proxy propagates it
    as the sender of every replica-bound sub-message so the per-reader /
    per-writer bookkeeping the register protocols keep (``updated`` sets --
    the paper's crucial info) is indistinguishable from a direct connection.
    """
    if not subs:
        raise ValueError("a proxy frame must contain at least one sub-request")
    return Message(
        sender=sender,
        receiver=receiver,
        kind=PROXY_KIND,
        payload={"ops": [_encode_proxy_sub(sub) for sub in subs]},
    )


def unpack_proxy_request(message: Message) -> List[ProxySubRequest]:
    """Inverse of :func:`make_proxy_request`."""
    if message.kind != PROXY_KIND:
        raise ValueError(f"not a proxy frame: kind={message.kind!r}")
    return [_decode_proxy_sub(entry) for entry in message.payload["ops"]]


def make_proxy_ack(
    sender: str, receiver: str, sub_replies: Sequence[ProxySubReply]
) -> Message:
    """Pack completed rounds into one proxy ack frame (proxy -> client).

    Only (sender, kind, payload) of each replica reply go on the wire; the
    round's identity travels once as (op_id, round_trip) on the
    :class:`ProxySubReply`, so proxy-internal attempt-scoped ids never leak
    back to the client.
    """
    if not sub_replies:
        raise ValueError("a proxy ack frame must contain at least one reply")
    entries: List[Dict[str, Any]] = []
    for sub in sub_replies:
        entry: Dict[str, Any] = {
            "op_id": sub.op_id,
            "round_trip": sub.round_trip,
            "replies": [
                {"sender": r.sender, "kind": r.kind, "payload": r.payload}
                for r in sub.replies
            ],
        }
        if sub.error is not None:
            entry["error"] = sub.error
        entries.append(entry)
    return Message(
        sender=sender, receiver=receiver, kind=PROXY_ACK_KIND, payload={"acks": entries}
    )


def unpack_proxy_ack(message: Message) -> List[ProxySubReply]:
    """Inverse of :func:`make_proxy_ack`: replies re-tagged with the round's
    (op_id, round_trip) and addressed to the receiving client."""
    if message.kind != PROXY_ACK_KIND:
        raise ValueError(f"not a proxy ack frame: kind={message.kind!r}")
    subs: List[ProxySubReply] = []
    for entry in message.payload["acks"]:
        replies = tuple(
            Message(
                sender=r["sender"],
                receiver=message.receiver,
                kind=r["kind"],
                payload=r.get("payload", {}),
                op_id=entry["op_id"],
                round_trip=entry.get("round_trip", 0),
            )
            for r in entry.get("replies", ())
        )
        subs.append(
            ProxySubReply(
                op_id=entry["op_id"],
                round_trip=entry.get("round_trip", 0),
                replies=replies,
                error=entry.get("error"),
            )
        )
    return subs


# -- view push frames (control plane -> proxies) --------------------------------

#: Kind of a control-plane frame pushing a fresh shard-map view to a proxy.
VIEW_PUSH_KIND = "view-push"
#: Kind of the proxy's acknowledgement that the pushed view was applied.
VIEW_PUSH_ACK_KIND = "view-push-ack"

#: The fields a pushed view must carry: a full snapshot
#: (``ShardMap.view_snapshot``) or a per-rebalance delta
#: (``ShardMap.view_delta``, marked by ``"delta": True``).
_VIEW_FIELDS = ("ring_epoch", "virtual_nodes", "shard_ids", "routes")
_DELTA_FIELDS = (
    "ring_epoch",
    "base_ring_epoch",
    "virtual_nodes",
    "added",
    "removed",
    "routes",
)


def make_view_push(sender: str, receiver: str, view: Dict[str, Any]) -> Message:
    """Pack one shard-map view (snapshot or delta) into a push frame.

    The control plane sends one push per proxy on every live
    ``resize()``/``move_shard()`` so proxies re-route *proactively* -- one
    message per proxy per rebalance instead of one stale-epoch bounce (and
    replayed round) per proxy; the bounce fence stays in place as the safety
    net for pushes that race in-flight frames or get lost.  A delta push
    carries only the entries the rebalance touched (O(moved), not
    O(shards)) plus the ring epoch it was computed against.
    """
    fields = _DELTA_FIELDS if view.get("delta") else _VIEW_FIELDS
    missing = [field_name for field_name in fields if field_name not in view]
    if missing:
        raise ValueError(f"view push is missing fields: {missing}")
    return Message(
        sender=sender,
        receiver=receiver,
        kind=VIEW_PUSH_KIND,
        payload={"view": view},
    )


def unpack_view_push(message: Message) -> Dict[str, Any]:
    """Inverse of :func:`make_view_push`: the pushed view snapshot."""
    if message.kind != VIEW_PUSH_KIND:
        raise ValueError(f"not a view push frame: kind={message.kind!r}")
    return message.payload["view"]


# -- drain frames (control plane <-> replicas, incremental migration) ------------
#
# The incremental key-range drain replaces the old single-process migration
# critical section with a frame protocol the control plane drives against
# the replicas of the donor and receiver groups:
#
#   fence    -> donor replicas bump the shard's epoch (older tags bounce from
#               now on) and answer with their key census;
#   host     -> receiver replicas start hosting the shard at its new epoch
#               with the incoming keys marked *pending* (served requests for
#               a pending key bounce until its range is installed);
#   transfer -> one donor replica exports copies of a key range's register
#               state (the registers stay in place until ``complete``);
#   install  -> the paired receiver replica absorbs the exported blobs and
#               clears the range's keys from its pending set;
#   complete -> donors drop the moved registers (or evict the whole shard),
#               receivers clear their migration bookkeeping.
#
# Every frame carries the migration id (``mig``) and a per-send ``token`` so
# the control plane can match acks and drive per-frame retry timers; every
# handler is idempotent, so a retried frame that raced its ack is harmless.

#: Control plane -> donor replica: fence a shard at a new epoch, return census.
DRAIN_FENCE_KIND = "drain-fence"
#: Donor's fence acknowledgement, carrying its key census for the shard.
DRAIN_FENCE_ACK_KIND = "drain-fence-ack"
#: Control plane -> receiver replica: host a shard with pending incoming keys.
DRAIN_HOST_KIND = "drain-host"
#: Control plane -> donor replica: export one key range's register state.
DRAIN_TRANSFER_KIND = "drain-transfer"
#: Donor's transfer acknowledgement, carrying the exported state blobs.
DRAIN_TRANSFER_ACK_KIND = "drain-transfer-ack"
#: Control plane -> receiver replica: install one key range's state blobs.
DRAIN_INSTALL_KIND = "drain-install"
#: Control plane -> replica: the migration is over for this shard.
DRAIN_COMPLETE_KIND = "drain-complete"
#: Generic acknowledgement for host/install/complete frames.
DRAIN_ACK_KIND = "drain-ack"


def _make_drain(sender: str, receiver: str, kind: str, mig: str, token: str,
                shard: str, extra: Dict[str, Any]) -> Message:
    payload = {"mig": mig, "token": token, "shard": shard}
    payload.update(extra)
    return Message(sender=sender, receiver=receiver, kind=kind, payload=payload)


def _unpack_drain(message: Message, kind: str) -> Dict[str, Any]:
    if message.kind != kind:
        raise ValueError(f"not a {kind} frame: kind={message.kind!r}")
    for field_name in ("mig", "token", "shard"):
        if field_name not in message.payload:
            raise ValueError(f"{kind} frame is missing field {field_name!r}")
    return message.payload


def make_drain_fence(sender: str, receiver: str, mig: str, token: str,
                     shard: str, epoch: int) -> Message:
    """Fence ``shard`` at ``epoch`` on one donor replica."""
    return _make_drain(sender, receiver, DRAIN_FENCE_KIND, mig, token, shard,
                       {"epoch": epoch})


def unpack_drain_fence(message: Message) -> Dict[str, Any]:
    return _unpack_drain(message, DRAIN_FENCE_KIND)


def make_drain_host(sender: str, receiver: str, mig: str, token: str,
                    shard: str, epoch: int, keys: Sequence[str]) -> Message:
    """Host ``shard`` at ``epoch`` with ``keys`` pending on one receiver."""
    return _make_drain(sender, receiver, DRAIN_HOST_KIND, mig, token, shard,
                       {"epoch": epoch, "keys": list(keys)})


def unpack_drain_host(message: Message) -> Dict[str, Any]:
    return _unpack_drain(message, DRAIN_HOST_KIND)


def make_drain_transfer(sender: str, receiver: str, mig: str, token: str,
                        shard: str, keys: Sequence[str]) -> Message:
    """Export the state of ``keys`` under ``shard`` from one donor replica."""
    return _make_drain(sender, receiver, DRAIN_TRANSFER_KIND, mig, token,
                       shard, {"keys": list(keys)})


def unpack_drain_transfer(message: Message) -> Dict[str, Any]:
    return _unpack_drain(message, DRAIN_TRANSFER_KIND)


def make_drain_install(sender: str, receiver: str, mig: str, token: str,
                       shard: str, epoch: int, keys: Sequence[str],
                       states: Dict[str, List[Dict[str, Any]]]) -> Message:
    """Install one range: ``keys`` lists every key of the range (all leave
    the receiver's pending set), ``states`` maps the subset with exported
    blobs to the (possibly several, one per donor replica) blobs to absorb."""
    return _make_drain(sender, receiver, DRAIN_INSTALL_KIND, mig, token,
                       shard, {"epoch": epoch, "keys": list(keys),
                               "states": states})


def unpack_drain_install(message: Message) -> Dict[str, Any]:
    return _unpack_drain(message, DRAIN_INSTALL_KIND)


def make_drain_complete(sender: str, receiver: str, mig: str, token: str,
                        shard: str, drop_keys: Sequence[str] = (),
                        evict: bool = False) -> Message:
    """Finish the migration at one replica: drop the moved registers (donor),
    evict the shard outright (removed/moved-away donor), and clear
    pending/installed bookkeeping (receiver)."""
    return _make_drain(sender, receiver, DRAIN_COMPLETE_KIND, mig, token,
                       shard, {"drop_keys": list(drop_keys), "evict": evict})


def unpack_drain_complete(message: Message) -> Dict[str, Any]:
    return _unpack_drain(message, DRAIN_COMPLETE_KIND)


# -- lease frames (replica <-> proxy, server-assisted read caching) -------------
#
# The proxy-side hot-key read cache stays atomic because every cached entry
# is backed by a bounded-duration read lease registered at the replicas that
# served the fill:
#
#   grant      -> a replica that served a lease-marked read sub-request
#                 confirms it registered the proxy as a lease holder for
#                 those keys (one frame per served batch, keys coalesced),
#                 echoing each key's fill nonce so a delayed grant crossing
#                 an eviction's release on the wire is never credited to a
#                 later fill of the same key;
#   invalidate -> a replica that received a write for a leased key tells
#                 every holder to drop its cached entry *now*; the write's
#                 application (and its ack) is deferred until the holders
#                 release or their leases expire;
#   release    -> a holder gives the lease back -- its answer to an
#                 invalidation, and also what it sends when it evicts an
#                 entry on its own (LRU pressure, view change, self-expiry).
#
# All three carry a plain key list; the grant adds a nonce list aligned with
# its keys, and ``ttl`` -- the server-side lease duration in the backend's
# time unit (the proxy self-expires earlier, which is what makes the scheme
# safe under clock skew).

#: Replica -> proxy: the replica registered read leases for these keys.
LEASE_GRANT_KIND = "lease-grant"
#: Replica -> lease holder: a write arrived, drop the cached entries now.
LEASE_INVALIDATE_KIND = "lease-invalidate"
#: Holder -> replica: the holder no longer claims leases on these keys.
LEASE_RELEASE_KIND = "lease-release"

#: Default server-side lease duration (the simulator's virtual time units;
#: the asyncio backend configures a wall-clock-appropriate value).
DEFAULT_LEASE_TTL = 60.0


def _make_lease(sender: str, receiver: str, kind: str, keys: Sequence[str],
                extra: Optional[Dict[str, Any]] = None) -> Message:
    if not keys:
        raise ValueError(f"a {kind} frame must name at least one key")
    payload: Dict[str, Any] = {"keys": list(keys)}
    if extra:
        payload.update(extra)
    return Message(sender=sender, receiver=receiver, kind=kind, payload=payload)


def _unpack_lease(message: Message, kind: str,
                  fields: Tuple[str, ...] = ()) -> Dict[str, Any]:
    if message.kind != kind:
        raise ValueError(f"not a {kind} frame: kind={message.kind!r}")
    for field_name in ("keys",) + fields:
        if field_name not in message.payload:
            raise ValueError(f"{kind} frame is missing field {field_name!r}")
    return message.payload


def make_lease_grant(sender: str, receiver: str, keys: Sequence[str],
                     ttl: float, nonces: Sequence[str]) -> Message:
    """Confirm read leases on ``keys`` for holder ``receiver``, good for
    ``ttl`` time units from the grant.  ``nonces`` aligns with ``keys``:
    each is the fill nonce of the lease-marked sub-request that asked for
    that key's lease, echoed so the holder can attribute the grant."""
    if ttl <= 0:
        raise ValueError("lease ttl must be positive")
    if len(nonces) != len(keys):
        raise ValueError("a lease grant needs one nonce per key")
    return _make_lease(sender, receiver, LEASE_GRANT_KIND, keys,
                       {"ttl": ttl, "nonces": list(nonces)})


def unpack_lease_grant(message: Message) -> Dict[str, Any]:
    return _unpack_lease(message, LEASE_GRANT_KIND, ("ttl", "nonces"))


def make_lease_invalidate(sender: str, receiver: str,
                          keys: Sequence[str]) -> Message:
    """Tell holder ``receiver`` to drop its cached entries for ``keys``."""
    return _make_lease(sender, receiver, LEASE_INVALIDATE_KIND, keys)


def unpack_lease_invalidate(message: Message) -> Dict[str, Any]:
    return _unpack_lease(message, LEASE_INVALIDATE_KIND)


def make_lease_release(sender: str, receiver: str,
                       keys: Sequence[str]) -> Message:
    """Give the leases on ``keys`` back to replica ``receiver``."""
    return _make_lease(sender, receiver, LEASE_RELEASE_KIND, keys)


def unpack_lease_release(message: Message) -> Dict[str, Any]:
    return _unpack_lease(message, LEASE_RELEASE_KIND)
