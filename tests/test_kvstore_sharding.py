"""Tests for the consistent-hash shard map and multiplexed group servers."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.timestamps import Tag
from repro.kvstore.batching import (
    STALE_SHARD_KIND,
    BatchGroupServer,
    BatchShardServer,
    BatchStats,
)
from repro.kvstore.sharding import HashRing, ShardMap, stable_hash
from repro.protocols.codec import encode_tag
from repro.protocols.registry import build_protocol
from repro.sim.messages import (
    BATCH_ACK_KIND,
    Message,
    SubRequest,
    make_batch,
    unpack_batch_ack,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("user:7") == stable_hash("user:7")

    def test_spreads(self):
        hashes = {stable_hash(f"k{i}") for i in range(100)}
        assert len(hashes) == 100


class TestHashRing:
    def test_same_key_same_owner(self):
        ring = HashRing(["sh1", "sh2", "sh3"])
        assert ring.owner_of("alpha") == ring.owner_of("alpha")

    def test_all_shards_get_keys(self):
        ring = HashRing(["sh1", "sh2", "sh3", "sh4"])
        owners = {ring.owner_of(f"k{i}") for i in range(200)}
        assert owners == {"sh1", "sh2", "sh3", "sh4"}

    def test_adding_a_shard_moves_few_keys(self):
        keys = [f"k{i}" for i in range(300)]
        before = HashRing(["sh1", "sh2", "sh3"])
        after = HashRing(["sh1", "sh2", "sh3", "sh4"])
        moved = sum(1 for k in keys if before.owner_of(k) != after.owner_of(k))
        # Consistent hashing moves roughly 1/4 of the keys, never most of them.
        assert moved < len(keys) // 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_owner_lookup_is_memoized(self):
        ring = HashRing(["sh1", "sh2"])
        for _ in range(5):
            ring.owner_of("hot-key")
        info = ring.cache_info()
        assert info.hits == 4 and info.misses == 1

    def test_memoized_lookup_matches_uncached(self):
        ring = HashRing(["sh1", "sh2", "sh3"])
        for i in range(100):
            key = f"k{i}"
            assert ring.owner_of(key) == ring._resolve(key)

    def test_full_memo_resets_and_stays_correct(self):
        ring = HashRing(["sh1", "sh2"], owner_cache_size=8)
        owners = {f"k{i}": ring.owner_of(f"k{i}") for i in range(30)}
        assert ring.cache_info().currsize <= 8
        for key, owner in owners.items():
            assert ring.owner_of(key) == owner

    def test_ring_is_freed_on_refcount_without_gc(self):
        # The old lru_cache-over-a-bound-method memo closed over the ring
        # and was stored on it: a reference cycle that pinned superseded
        # rings until a gc pass.  A plain dict memo must not -- the weakref
        # dies the moment the last reference does, no collector involved.
        import weakref

        ring = HashRing(["sh1", "sh2"])
        ring.owner_of("hot-key")
        ref = weakref.ref(ring)
        del ring
        assert ref() is None

    def test_resize_clears_the_superseded_rings_memo(self):
        shard_map = ShardMap(2)
        old_ring = shard_map.ring
        old_ring.owner_of("k1")
        assert old_ring.cache_info().currsize == 1
        plan = shard_map.resize(4)
        assert old_ring.cache_info().currsize == 0
        # The plan's retained old ring still resolves (memo refills lazily).
        assert plan.moved_fraction([f"k{i}" for i in range(50)]) < 1.0

    def test_move_shard_clears_the_memo(self):
        shard_map = ShardMap(2, num_groups=2)
        shard_map.ring.owner_of("k1")
        shard_map.move_shard("sh1", "g2")
        assert shard_map.ring.cache_info().currsize == 0
        assert shard_map.shards["sh1"].group.group_id == "g2"


class TestShardMap:
    def test_builds_disjoint_replica_groups(self):
        shard_map = ShardMap(3, servers_per_shard=3)
        assert len(shard_map) == 3
        servers = shard_map.all_servers
        assert len(servers) == 9
        assert len(set(servers)) == 9

    def test_shard_for_is_stable(self):
        shard_map = ShardMap(4)
        spec = shard_map.shard_for("user:42")
        assert shard_map.shard_for("user:42") is spec
        assert "user:42" in shard_map.assignments(["user:42"])[spec.shard_id]

    def test_assignments_cover_all_keys(self):
        shard_map = ShardMap(2)
        keys = [f"k{i}" for i in range(50)]
        grouped = shard_map.assignments(keys)
        assert sorted(k for ks in grouped.values() for k in ks) == sorted(keys)

    def test_rejects_single_writer_protocol_with_many_clients(self):
        with pytest.raises(ConfigurationError):
            ShardMap(2, protocol_key="abd-swmr", servers_per_shard=3, writers=3)

    def test_describe(self):
        info = ShardMap(2, servers_per_shard=3).describe()
        assert info["shards"] == 2 and info["total_servers"] == 6
        assert info["groups"] == 2 and info["ring_epoch"] == 1

    def test_many_shards_on_few_groups(self):
        # The decoupling: shard count exceeds server capacity for disjoint
        # groups, because groups are shared.
        shard_map = ShardMap(8, num_groups=2, servers_per_shard=3)
        assert len(shard_map) == 8
        assert len(shard_map.groups) == 2
        assert len(shard_map.all_servers) == 6
        counts = shard_map.shard_counts()
        assert sum(counts.values()) == 8
        assert all(count == 4 for count in counts.values())  # round robin


def _tagged(server: BatchGroupServer, shard: str, key: str, message: Message,
            epoch=None) -> SubRequest:
    resolved = epoch if epoch is not None else server.hosted_epoch(shard)
    return SubRequest(key=key, message=message, shard=shard, epoch=resolved)


class TestBatchGroupServer:
    def _server(self, shards=("sha", "shb")):
        protocol = build_protocol("abd-mwmr", ["s1", "s2", "s3"], 1)
        return BatchGroupServer("s1", protocol, {shard: 1 for shard in shards})

    def test_alias_preserved(self):
        assert BatchShardServer is BatchGroupServer

    def test_routes_sub_requests_per_key_across_shards(self):
        server = self._server()
        update_a = Message("w1", "s1", "update",
                           {"tag": encode_tag(Tag(1, "w1")), "value": "A"},
                           op_id="op-1", round_trip=2)
        update_b = Message("w1", "s1", "update",
                           {"tag": encode_tag(Tag(1, "w1")), "value": "B"},
                           op_id="op-2", round_trip=2)
        batch = make_batch("w1", "s1", [
            _tagged(server, "sha", "ka", update_a),
            _tagged(server, "shb", "kb", update_b),
        ])
        ack = server.handle(batch)
        assert ack.kind == BATCH_ACK_KIND
        assert server.keys_hosted == 2
        assert server.keys_for("sha") == ["ka"]

        query_a = Message("r1", "s1", "query", op_id="op-3", round_trip=1)
        ack = server.handle(
            make_batch("r1", "s1", [_tagged(server, "sha", "ka", query_a)])
        )
        (key, reply), = unpack_batch_ack(ack)
        assert key == "ka"
        assert reply.payload["value"] == "A"
        assert reply.op_id == "op-3" and reply.round_trip == 1

    def test_same_key_different_shards_are_independent_registers(self):
        server = self._server()
        update = Message("w1", "s1", "update",
                         {"tag": encode_tag(Tag(5, "w1")), "value": "only-sha"})
        server.handle(make_batch("w1", "s1", [_tagged(server, "sha", "ka", update)]))
        query = Message("r1", "s1", "query")
        ack = server.handle(make_batch("r1", "s1", [_tagged(server, "shb", "ka", query)]))
        (_, reply), = unpack_batch_ack(ack)
        assert reply.payload["value"] is None  # shb's "ka" never written

    def test_stale_epoch_bounces_without_touching_registers(self):
        server = self._server()
        server.set_epoch("sha", 3)
        update = Message("w1", "s1", "update",
                         {"tag": encode_tag(Tag(1, "w1")), "value": "A"},
                         op_id="op-1", round_trip=2)
        ack = server.handle(
            make_batch("w1", "s1", [_tagged(server, "sha", "ka", update, epoch=2)])
        )
        (_, reply), = unpack_batch_ack(ack)
        assert reply.kind == STALE_SHARD_KIND
        assert reply.payload["epoch"] == 3 and reply.payload["sent_epoch"] == 2
        assert reply.op_id == "op-1" and reply.round_trip == 2
        assert server.keys_hosted == 0
        assert server.stale_bounces == 1

    def test_unhosted_and_untagged_shards_bounce(self):
        server = self._server(shards=("sha",))
        query = Message("r1", "s1", "query")
        ack = server.handle(make_batch("r1", "s1", [
            SubRequest("k", query, shard="nope", epoch=1),
            SubRequest("k", query),  # legacy untagged form
        ]))
        for _, reply in unpack_batch_ack(ack):
            assert reply.kind == STALE_SHARD_KIND
            assert reply.payload["epoch"] is None

    def test_evict_and_install_move_state(self):
        source = self._server()
        dest = self._server(shards=())
        update = Message("w1", "s1", "update",
                         {"tag": encode_tag(Tag(7, "w1")), "value": "moved"})
        source.handle(make_batch("w1", "s1", [_tagged(source, "sha", "ka", update)]))
        registers = source.evict_shard("sha")
        assert source.hosted_epoch("sha") is None
        dest.host_shard("sha", 2, registers)
        query = Message("r1", "s1", "query")
        ack = dest.handle(make_batch("r1", "s1", [_tagged(dest, "sha", "ka", query)]))
        (_, reply), = unpack_batch_ack(ack)
        assert reply.payload["value"] == "moved"
        assert reply.sender == "s1"

    def test_rejects_non_batch_messages(self):
        server = self._server()
        with pytest.raises(ValueError):
            server.handle(Message("r1", "s1", "query"))

    def test_counts_batches(self):
        server = self._server()
        query = Message("r1", "s1", "query")
        server.handle(make_batch("r1", "s1", [
            _tagged(server, "sha", "ka", query),
            _tagged(server, "sha", "kb", query),
        ]))
        assert server.batches_served == 1
        assert server.sub_ops_served == 2
        assert server.largest_batch == 2


class TestBatchStats:
    def test_mean_and_merge(self):
        first = BatchStats()
        first.record(2)
        first.record(4)
        second = BatchStats()
        second.record(6)
        first.merge(second)
        assert first.rounds == 3
        assert first.sub_operations == 12
        assert first.mean_batch_size == pytest.approx(4.0)
        assert first.largest == 6
        assert "3 batch rounds" in first.summary()

    def test_empty_mean(self):
        assert BatchStats().mean_batch_size == 0.0
