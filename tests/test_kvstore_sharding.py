"""Tests for the consistent-hash shard map and batch server logic."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.timestamps import Tag
from repro.kvstore.batching import BatchShardServer, BatchStats
from repro.kvstore.sharding import HashRing, ShardMap, stable_hash
from repro.protocols.codec import encode_tag
from repro.protocols.registry import build_protocol
from repro.sim.messages import (
    BATCH_ACK_KIND,
    Message,
    make_batch,
    unpack_batch_ack,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("user:7") == stable_hash("user:7")

    def test_spreads(self):
        hashes = {stable_hash(f"k{i}") for i in range(100)}
        assert len(hashes) == 100


class TestHashRing:
    def test_same_key_same_owner(self):
        ring = HashRing(["sh1", "sh2", "sh3"])
        assert ring.owner_of("alpha") == ring.owner_of("alpha")

    def test_all_shards_get_keys(self):
        ring = HashRing(["sh1", "sh2", "sh3", "sh4"])
        owners = {ring.owner_of(f"k{i}") for i in range(200)}
        assert owners == {"sh1", "sh2", "sh3", "sh4"}

    def test_adding_a_shard_moves_few_keys(self):
        keys = [f"k{i}" for i in range(300)]
        before = HashRing(["sh1", "sh2", "sh3"])
        after = HashRing(["sh1", "sh2", "sh3", "sh4"])
        moved = sum(1 for k in keys if before.owner_of(k) != after.owner_of(k))
        # Consistent hashing moves roughly 1/4 of the keys, never most of them.
        assert moved < len(keys) // 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestShardMap:
    def test_builds_disjoint_replica_groups(self):
        shard_map = ShardMap(3, servers_per_shard=3)
        assert len(shard_map) == 3
        servers = shard_map.all_servers
        assert len(servers) == 9
        assert len(set(servers)) == 9

    def test_shard_for_is_stable(self):
        shard_map = ShardMap(4)
        spec = shard_map.shard_for("user:42")
        assert shard_map.shard_for("user:42") is spec
        assert "user:42" in shard_map.assignments(["user:42"])[spec.shard_id]

    def test_assignments_cover_all_keys(self):
        shard_map = ShardMap(2)
        keys = [f"k{i}" for i in range(50)]
        grouped = shard_map.assignments(keys)
        assert sorted(k for ks in grouped.values() for k in ks) == sorted(keys)

    def test_rejects_single_writer_protocol_with_many_clients(self):
        with pytest.raises(ConfigurationError):
            ShardMap(2, protocol_key="abd-swmr", servers_per_shard=3, writers=3)

    def test_describe(self):
        info = ShardMap(2, servers_per_shard=3).describe()
        assert info["shards"] == 2 and info["total_servers"] == 6


class TestBatchShardServer:
    def _server(self):
        protocol = build_protocol("abd-mwmr", ["s1", "s2", "s3"], 1)
        return BatchShardServer("s1", protocol)

    def test_routes_sub_requests_per_key(self):
        server = self._server()
        update_a = Message("w1", "s1", "update",
                           {"tag": encode_tag(Tag(1, "w1")), "value": "A"},
                           op_id="op-1", round_trip=2)
        update_b = Message("w1", "s1", "update",
                           {"tag": encode_tag(Tag(1, "w1")), "value": "B"},
                           op_id="op-2", round_trip=2)
        batch = make_batch("w1", "s1", [("ka", update_a), ("kb", update_b)])
        ack = server.handle(batch)
        assert ack.kind == BATCH_ACK_KIND
        assert server.keys_hosted == 2

        query_a = Message("r1", "s1", "query", op_id="op-3", round_trip=1)
        ack = server.handle(make_batch("r1", "s1", [("ka", query_a)]))
        (key, reply), = unpack_batch_ack(ack)
        assert key == "ka"
        assert reply.payload["value"] == "A"
        assert reply.op_id == "op-3" and reply.round_trip == 1

    def test_keys_are_independent_registers(self):
        server = self._server()
        update = Message("w1", "s1", "update",
                         {"tag": encode_tag(Tag(5, "w1")), "value": "only-ka"})
        server.handle(make_batch("w1", "s1", [("ka", update)]))
        query = Message("r1", "s1", "query")
        ack = server.handle(make_batch("r1", "s1", [("kb", query)]))
        (_, reply), = unpack_batch_ack(ack)
        assert reply.payload["value"] is None  # kb never written

    def test_rejects_non_batch_messages(self):
        server = self._server()
        with pytest.raises(ValueError):
            server.handle(Message("r1", "s1", "query"))

    def test_counts_batches(self):
        server = self._server()
        query = Message("r1", "s1", "query")
        server.handle(make_batch("r1", "s1", [("ka", query), ("kb", query)]))
        assert server.batches_served == 1
        assert server.sub_ops_served == 2
        assert server.largest_batch == 2


class TestBatchStats:
    def test_mean_and_merge(self):
        first = BatchStats()
        first.record(2)
        first.record(4)
        second = BatchStats()
        second.record(6)
        first.merge(second)
        assert first.rounds == 3
        assert first.sub_operations == 12
        assert first.mean_batch_size == pytest.approx(4.0)
        assert first.largest == 6
        assert "3 batch rounds" in first.summary()

    def test_empty_mean(self):
        assert BatchStats().mean_batch_size == 0.0
