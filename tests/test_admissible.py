"""Tests for the ``admissible`` predicate of Algorithm 1."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.admissible import (
    ReadAck,
    ValueReport,
    admissible,
    admissible_values,
    select_return_value,
)
from repro.core.timestamps import BOTTOM_TAG, Tag


def ack(server: str, reports: dict) -> ReadAck:
    """Helper: build a ReadAck from {tag: updated-iterable}."""
    mapping = {tag: ValueReport.of(tag, updated) for tag, updated in reports.items()}
    best = max(mapping, default=BOTTOM_TAG)
    return ReadAck(server=server, reports=mapping, max_tag=best)


V1 = Tag(1, "w1")
V2 = Tag(2, "w1")


class TestAdmissibleBasics:
    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            admissible(V1, [], 0, 4, 1)

    def test_not_admissible_when_too_few_carriers(self):
        acks = [ack("s1", {V1: {"w1", "r1"}}), ack("s2", {}), ack("s3", {})]
        assert admissible(V1, acks, 1, 4, 1) is None

    def test_admissible_degree_one_with_full_coverage(self):
        acks = [ack(f"s{i}", {V1: {"w1", "r1"}}) for i in range(1, 4)]
        witness = admissible(V1, acks, 1, 4, 1)
        assert witness is not None
        assert witness.degree == 1
        assert witness.servers == {"s1", "s2", "s3"}
        assert {"w1", "r1"} <= set(witness.common_updated)

    def test_admissible_degree_two_with_partial_coverage(self):
        # Only S - 2t = 2 of 4 servers carry the value, but both have seen it
        # propagate to two clients.
        acks = [
            ack("s1", {V1: {"w1", "r1"}}),
            ack("s2", {V1: {"w1", "r1"}}),
            ack("s3", {}),
        ]
        assert admissible(V1, acks, 1, 4, 1) is None
        witness = admissible(V1, acks, 2, 4, 1)
        assert witness is not None
        assert witness.servers == {"s1", "s2"}

    def test_common_updated_requirement(self):
        # Two carriers but their updated sets share only one client: not
        # admissible with degree 2.
        acks = [
            ack("s1", {V1: {"w1"}}),
            ack("s2", {V1: {"r1"}}),
            ack("s3", {}),
        ]
        assert admissible(V1, acks, 2, 4, 1) is None

    def test_subset_search_drops_small_updated_sets(self):
        # Taking all three carriers the intersection is {"w1"} (size 1), but a
        # subset of two carriers has intersection size 2, which suffices for
        # degree 2 and still meets the S - 2t = 2 size requirement.
        acks = [
            ack("s1", {V1: {"w1", "r1"}}),
            ack("s2", {V1: {"w1", "r1"}}),
            ack("s3", {V1: {"w1"}}),
        ]
        witness = admissible(V1, acks, 2, 4, 1)
        assert witness is not None
        assert witness.servers == {"s1", "s2"}
        assert set(witness.common_updated) >= {"w1", "r1"}


class TestSelection:
    def test_returns_largest_admissible(self):
        acks = [
            ack("s1", {V1: {"w1", "r1"}, V2: {"w1", "r1"}}),
            ack("s2", {V1: {"w1", "r1"}, V2: {"w1", "r1"}}),
            ack("s3", {V1: {"w1", "r1"}, V2: {"w1", "r1"}}),
        ]
        chosen, _ = select_return_value(acks, 4, 1, max_degree=3)
        assert chosen == V2

    def test_falls_back_to_older_admissible_value(self):
        # V2 is carried by a single server with a tiny updated set: not
        # admissible; V1 is carried everywhere.
        acks = [
            ack("s1", {V1: {"w1", "r1"}, V2: {"w1"}}),
            ack("s2", {V1: {"w1", "r1"}}),
            ack("s3", {V1: {"w1", "r1"}}),
        ]
        chosen, _ = select_return_value(acks, 4, 1, max_degree=3)
        assert chosen == V1

    def test_accepts_singleton_witness_with_large_updated_set(self):
        # Degree 3 admissibility: one carrier with three clients in updated.
        acks = [
            ack("s1", {V2: {"w1", "w2", "r1"}, V1: {"w1", "r1"}}),
            ack("s2", {V1: {"w1", "r1"}}),
            ack("s3", {V1: {"w1", "r1"}}),
        ]
        chosen, witnesses = select_return_value(acks, 4, 1, max_degree=3)
        assert chosen == V2
        assert witnesses[V2].degree == 3

    def test_no_candidates(self):
        chosen, witnesses = select_return_value([], 4, 1, max_degree=3)
        assert chosen is None
        assert witnesses == {}

    def test_admissible_values_collects_all(self):
        acks = [
            ack("s1", {BOTTOM_TAG: {"r1"}, V1: {"w1", "r1"}}),
            ack("s2", {BOTTOM_TAG: {"r1"}, V1: {"w1", "r1"}}),
            ack("s3", {BOTTOM_TAG: {"r1"}, V1: {"w1", "r1"}}),
        ]
        values = admissible_values(acks, 4, 1, max_degree=3)
        assert BOTTOM_TAG in values and V1 in values


class TestAdmissibleProperties:
    clients = st.sets(st.sampled_from(["w1", "w2", "r1", "r2", "r3"]), max_size=5)

    @given(
        st.lists(clients, min_size=1, max_size=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=2),
    )
    def test_witness_satisfies_definition(self, updated_sets, degree, faults):
        total = len(updated_sets) + faults
        acks = [
            ack(f"s{i}", {V1: updated}) for i, updated in enumerate(updated_sets, 1)
        ]
        witness = admissible(V1, acks, degree, total, faults)
        if witness is None:
            return
        # |mu| >= S - a*t
        assert len(witness.servers) >= total - degree * faults
        # every witness server carries the value
        carriers = {a.server for a in acks if a.knows(V1)}
        assert witness.servers <= carriers
        # the common updated set really is common and large enough
        assert len(witness.common_updated) >= degree
        for server in witness.servers:
            matching = next(a for a in acks if a.server == server)
            assert witness.common_updated <= matching.updated_set(V1)

    @given(
        st.lists(clients, min_size=2, max_size=6),
        st.integers(min_value=1, max_value=3),
    )
    def test_monotone_in_extra_acks(self, updated_sets, degree):
        """Adding a fresh ack carrying the value can never break admissibility."""
        faults = 1
        total = len(updated_sets) + 2
        acks = [
            ack(f"s{i}", {V1: updated}) for i, updated in enumerate(updated_sets, 1)
        ]
        before = admissible(V1, acks, degree, total, faults)
        if before is None:
            return
        superset = set(before.common_updated) | {"extra-client"}
        extra = ack(f"s{len(updated_sets) + 1}", {V1: superset})
        after = admissible(V1, acks + [extra], degree, total, faults)
        assert after is not None
