"""Tests for Byzantine fault injection and the Byzantine-tolerant register."""

from __future__ import annotations

import pytest

from repro.consistency import check_atomicity
from repro.consistency.anomalies import AnomalyKind
from repro.core.errors import ConfigurationError
from repro.core.timestamps import Tag
from repro.protocols.byzantine_safe import ByzantineSafeMwmrProtocol, vouched_pairs
from repro.protocols.codec import encode_tag
from repro.protocols.registry import PROTOCOLS, build_protocol
from repro.protocols.server_state import TagValueServer
from repro.sim.byzantine import (
    FABRICATED_VALUE,
    ByzantineInjector,
    Equivocation,
    SilentDrop,
    TagInflation,
    ValueCorruption,
    make_byzantine,
)
from repro.sim.delays import UniformDelay
from repro.sim.messages import Message
from repro.sim.runtime import Simulation
from repro.util.ids import client_ids, server_ids
from repro.workloads.generators import apply_open_loop, uniform_open_loop


class TestBehaviours:
    def _honest_reply(self):
        server = TagValueServer("s1")
        server.handle(
            Message("w1", "s1", "update", {"tag": encode_tag(Tag(1, "w1")), "value": "real"})
        )
        return server

    def test_value_corruption(self):
        wrapped = make_byzantine(self._honest_reply(), ValueCorruption())
        reply = wrapped.handle(Message("r1", "s1", "query"))
        assert reply.payload["value"] == FABRICATED_VALUE

    def test_tag_inflation(self):
        wrapped = make_byzantine(self._honest_reply(), TagInflation())
        reply = wrapped.handle(Message("r1", "s1", "query"))
        assert reply.payload["value"] == FABRICATED_VALUE
        assert reply.payload["tag"].startswith("1000000000")

    def test_equivocation_alternates(self):
        wrapped = make_byzantine(self._honest_reply(), Equivocation())
        first = wrapped.handle(Message("r1", "s1", "query"))
        second = wrapped.handle(Message("r1", "s1", "query"))
        assert first.payload["value"] == FABRICATED_VALUE
        assert second.payload["value"] == "real"

    def test_silent_drop(self):
        wrapped = make_byzantine(self._honest_reply(), SilentDrop())
        assert wrapped.handle(Message("r1", "s1", "query")) is None

    def test_injector_budget(self):
        injector = ByzantineInjector(server_ids(5), 1)
        injector.corrupt("s1", ValueCorruption())
        with pytest.raises(ConfigurationError):
            injector.corrupt("s2", ValueCorruption())
        with pytest.raises(ConfigurationError):
            injector.corrupt("s9", ValueCorruption())
        assert injector.corrupted == {"s1"}

    def test_injector_wrap_only_corrupted(self):
        injector = ByzantineInjector(server_ids(3), 1)
        injector.corrupt("s2", ValueCorruption())
        honest = TagValueServer("s1")
        assert injector.wrap("s1", honest) is honest
        assert injector.wrap("s2", TagValueServer("s2")) is not None


class TestVouching:
    def _ack(self, server, tag, value):
        return Message(server, "r1", "query-ack", {"tag": encode_tag(tag), "value": value})

    def test_vouched_pairs_threshold(self):
        acks = [
            self._ack("s1", Tag(1, "w1"), "real"),
            self._ack("s2", Tag(1, "w1"), "real"),
            self._ack("s3", Tag(9, "byz"), "fake"),
        ]
        vouched = vouched_pairs(acks, min_vouchers=2)
        assert (encode_tag(Tag(1, "w1")), "real") in vouched
        assert (encode_tag(Tag(9, "byz")), "fake") not in vouched

    def test_bottom_always_considered(self):
        vouched = vouched_pairs([], min_vouchers=2)
        assert any(key[0].startswith("0|") for key in vouched)


class TestByzantineSafeProtocol:
    def test_requires_enough_servers(self):
        with pytest.raises(ConfigurationError):
            ByzantineSafeMwmrProtocol(server_ids(4), 1)
        protocol = ByzantineSafeMwmrProtocol(server_ids(5), 1)
        assert protocol.name.startswith("byzantine-safe")

    def test_registered(self):
        assert "byzantine-safe-mwmr" in PROTOCOLS

    def _run(self, key, behaviors, seed=0, servers=5):
        protocol = build_protocol(key, server_ids(servers), 1, readers=2, writers=2)
        simulation = Simulation(
            protocol,
            delay_model=UniformDelay(0.5, 1.5, seed=seed),
            byzantine_behaviors=behaviors,
        )
        workload = uniform_open_loop(
            client_ids("w", 2), client_ids("r", 2), 3, 4, horizon=80.0, seed=seed
        )
        apply_open_loop(simulation, workload)
        return simulation.run()

    def test_atomic_without_faults(self):
        result = self._run("byzantine-safe-mwmr", behaviors={})
        assert check_atomicity(result.history).atomic

    @pytest.mark.parametrize("behavior", [ValueCorruption(), TagInflation(), Equivocation()])
    def test_atomic_with_one_byzantine_server(self, behavior):
        result = self._run("byzantine-safe-mwmr", behaviors={"s1": behavior})
        verdict = check_atomicity(result.history)
        assert verdict.atomic, verdict.report.summary()
        # The fabricated value never escapes to a client.
        assert all(op.value != FABRICATED_VALUE for op in result.history.reads)

    def test_silent_byzantine_server_tolerated(self):
        result = self._run("byzantine-safe-mwmr", behaviors={"s1": SilentDrop()})
        assert all(op.is_complete for op in result.history)
        assert check_atomicity(result.history).atomic

    def test_plain_abd_returns_fabricated_data(self):
        # The baseline MW-ABD trusts the largest tag it sees, so a single
        # tag-inflating Byzantine server poisons its reads -- the checker
        # reports reads of a value nobody wrote.
        result = self._run("abd-mwmr", behaviors={"s1": TagInflation()})
        verdict = check_atomicity(result.history)
        poisoned = [op for op in result.history.reads if op.value == FABRICATED_VALUE]
        assert poisoned
        assert not verdict.atomic
        assert any(
            anomaly.kind is AnomalyKind.READ_FROM_NOWHERE
            for anomaly in verdict.report.anomalies
        )

    def test_byzantine_budget_enforced_in_simulation(self):
        protocol = build_protocol("byzantine-safe-mwmr", server_ids(5), 1)
        with pytest.raises(ConfigurationError):
            Simulation(
                protocol,
                byzantine_behaviors={"s4": ValueCorruption(), "s5": ValueCorruption()},
            )

    def test_round_trips_are_two_two(self):
        result = self._run("byzantine-safe-mwmr", behaviors={"s1": ValueCorruption()})
        writes, reads = result.history.round_trip_counts()
        assert max(writes) == 2 and max(reads) == 2
