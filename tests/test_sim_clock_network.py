"""Tests for the discrete-event clock, event queue and simulated network."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.sim.clock import EventQueue, SimClock
from repro.sim.delays import (
    ConstantDelay,
    ExponentialDelay,
    GeoDelay,
    PerLinkDelay,
    UniformDelay,
)
from repro.sim.messages import Message
from repro.sim.network import Network, SkipRule


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: fired.append(n))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.5, lambda: seen.append(queue.clock.now))
        queue.run()
        assert seen == [2.5]

    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        queue.run()
        assert fired == []
        assert len(queue) == 0

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        seen = []
        queue.schedule_at(5.0, lambda: seen.append(queue.clock.now))
        queue.run()
        assert seen == [5.0]

    def test_run_until_deadline(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(10.0, lambda: fired.append(10))
        queue.run(until=5.0)
        assert fired == [1]

    def test_event_cap_detects_livelock(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule(0.1, reschedule)

        queue.schedule(0.1, reschedule)
        with pytest.raises(SimulationError):
            queue.run(max_events=100)

    def test_clock_cannot_go_backwards(self):
        clock = SimClock()
        clock._advance(5.0)
        with pytest.raises(SimulationError):
            clock._advance(1.0)


class TestDelayModels:
    def test_constant(self):
        assert ConstantDelay(2.0).delay("a", "b") == 2.0

    def test_uniform_within_bounds_and_deterministic(self):
        a, b = UniformDelay(1.0, 3.0, seed=9), UniformDelay(1.0, 3.0, seed=9)
        xs = [a.delay("x", "y") for _ in range(20)]
        ys = [b.delay("x", "y") for _ in range(20)]
        assert xs == ys
        assert all(1.0 <= v <= 3.0 for v in xs)

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformDelay(3.0, 1.0)

    def test_exponential_floor(self):
        model = ExponentialDelay(mean=1.0, floor=0.5, seed=1)
        assert all(model.delay("a", "b") >= 0.5 for _ in range(50))

    def test_per_link(self):
        model = PerLinkDelay({("c", "s1"): 10.0}, default=1.0)
        assert model.delay("c", "s1") == 10.0
        assert model.delay("c", "s2") == 1.0

    def test_geo_delay_local_vs_wan(self):
        sites = {"c1": "us", "s1": "us", "s2": "eu"}
        model = GeoDelay(sites, local_delay=1.0, wan_delay=50.0, jitter_fraction=0.0)
        assert model.delay("c1", "s1") == 1.0
        assert model.delay("c1", "s2") == 50.0


def _make_network():
    queue = EventQueue()
    network = Network(queue, ConstantDelay(1.0))
    inbox = {"a": [], "b": []}
    network.register("a", lambda m: inbox["a"].append(m))
    network.register("b", lambda m: inbox["b"].append(m))
    return queue, network, inbox


class TestNetwork:
    def test_basic_delivery(self):
        queue, network, inbox = _make_network()
        network.send(Message("a", "b", "ping"))
        queue.run()
        assert len(inbox["b"]) == 1
        assert network.delivered_count == 1

    def test_duplicate_registration_rejected(self):
        queue, network, _ = _make_network()
        with pytest.raises(SimulationError):
            network.register("a", lambda m: None)

    def test_unknown_receiver_raises(self):
        queue, network, _ = _make_network()
        network.send(Message("a", "zzz", "ping"))
        with pytest.raises(SimulationError):
            queue.run()

    def test_crash_drops_traffic(self):
        queue, network, inbox = _make_network()
        network.crash("b")
        network.send(Message("a", "b", "ping"))
        queue.run()
        assert inbox["b"] == []
        assert "b" in network.crashed

    def test_crash_after_send_drops_delivery(self):
        queue, network, inbox = _make_network()
        network.send(Message("a", "b", "ping"))
        network.crash("b")
        queue.run()
        assert inbox["b"] == []

    def test_skip_rule_delays_past_everything(self):
        queue, network, inbox = _make_network()
        network.add_skip_rule(SkipRule(sender="a", receiver="b", kind="ping"))
        network.send(Message("a", "b", "ping"))
        network.send(Message("a", "b", "pong"))
        queue.run(until=100.0)
        kinds = [m.kind for m in inbox["b"]]
        assert kinds == ["pong"]

    def test_skip_rule_matches_both_directions(self):
        rule = SkipRule(sender="a", receiver="b")
        assert rule.matches(Message("a", "b", "x"))
        assert rule.matches(Message("b", "a", "x"))
        one_way = SkipRule(sender="a", receiver="b", both_directions=False)
        assert not one_way.matches(Message("b", "a", "x"))

    def test_skip_rule_op_and_round_trip(self):
        rule = SkipRule(receiver="b", op_id="op-1", round_trip=2)
        assert rule.matches(Message("a", "b", "x", op_id="op-1", round_trip=2))
        assert not rule.matches(Message("a", "b", "x", op_id="op-1", round_trip=1))
        assert not rule.matches(Message("a", "b", "x", op_id="op-2", round_trip=2))

    def test_remove_and_clear_skip_rules(self):
        queue, network, inbox = _make_network()
        rule = network.add_skip_rule(SkipRule(sender="a"))
        network.remove_skip_rule(rule)
        network.send(Message("a", "b", "ping"))
        queue.run()
        assert len(inbox["b"]) == 1

    def test_interceptor_overrides_delay(self):
        queue, network, inbox = _make_network()
        times = []
        network.register("c", lambda m: times.append(queue.clock.now))
        network.set_interceptor(lambda m: 7.0 if m.kind == "slow" else None)
        network.send(Message("a", "c", "slow"))
        network.send(Message("a", "c", "fast"))
        queue.run()
        assert times == [1.0, 7.0]

    def test_interceptor_can_skip(self):
        queue, network, inbox = _make_network()
        network.set_interceptor(lambda m: float("inf"))
        network.send(Message("a", "b", "ping"))
        queue.run(until=100.0)
        assert inbox["b"] == []
        assert network.pending_messages() == 1

    def test_message_reply_addressing(self):
        msg = Message("r1", "s1", "read", op_id="op-9", round_trip=2)
        reply = msg.reply("READACK", {"x": 1})
        assert reply.sender == "s1" and reply.receiver == "r1"
        assert reply.op_id == "op-9" and reply.round_trip == 2
        assert reply.payload == {"x": 1}
