"""Tests for the sans-I/O kvstore engine: equivalence, deltas, import ban.

Three concerns, each guarding the engine extraction a different way:

* **Cross-backend equivalence** -- the same scripted operation sequence is
  driven through a pure in-memory harness, the simulator adapter, and the
  asyncio adapter, and the *engines'* emitted effect sequences (normalized
  to sends and completions) must be identical.  Any future drift between
  the backends' protocol behaviour fails here by construction, because the
  trace is recorded at the engine boundary both adapters share.
* **Delta view pushes** -- a rebalance pushes O(moved) route entries, not
  O(shards); deltas adopt monotonically out of order; and a dropped delta
  degrades cleanly to the epoch-fence bounce.
* **Import ban** -- ``repro.kvstore.engine`` must import neither
  ``asyncio`` nor ``repro.sim``: the engines are transport-free, and this
  test keeps them that way.
"""

from __future__ import annotations

import ast
import heapq
import itertools
import os
import subprocess
import sys
from pathlib import Path


from repro.kvstore import (
    ShardMap,
    SimKVCluster,
    check_per_key_atomicity,
    generate_workload,
    run_sim_kv_workload,
)
from repro.kvstore.engine import (
    CONTROL_PLANE,
    CancelTimer,
    ClientSessionEngine,
    Connect,
    ControlPlaneEngine,
    GroupServerEngine,
    OpCompleted,
    OpFailed,
    ProxyEngine,
    SIM_RETRY_POLICY,
    SendFrame,
    StartTimer,
    CachedShardView,
    view_push_frames,
)
from repro.kvstore.perkey import KVHistoryRecorder
from repro.core.operations import OpKind
from repro.observe import (
    NULL_OBSERVER,
    TIMER_ARMED,
    TIMER_CANCELLED,
    TIMER_FIRED,
    MetricsObserver,
    ObserverHub,
)

import repro.kvstore.engine as engine_package


# -- the pure in-memory harness -------------------------------------------------


class MemoryFabric:
    """A deterministic in-memory 'transport' for the sans-I/O engines.

    Delivers ``SendFrame`` effects to the destination engine after a
    constant delay, fires ``StartTimer`` effects off the same virtual
    queue, and acknowledges ``Connect`` immediately -- i.e. exactly what a
    backend adapter does, with no sockets and no simulator runtime.  Events
    at equal timestamps fire in scheduling order, so runs are bit-for-bit
    deterministic.
    """

    def __init__(self) -> None:
        self._heap = []
        self._seq = itertools.count()
        self.now = 0.0
        self._engines = {}
        self._timers = {}
        self.callbacks = {}
        self.failures = []
        self.observers = {}

    def register(self, process_id, engine, observer=None) -> None:
        self._engines[process_id] = engine
        self.observers[process_id] = observer if observer is not None else NULL_OBSERVER

    def _push(self, delay, action) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), action))

    def execute(self, owner_id, effects) -> None:
        engine = self._engines[owner_id]
        for effect in effects:
            if isinstance(effect, SendFrame):
                self._push(1.0, lambda eff=effect: self._deliver(eff))
            elif isinstance(effect, StartTimer):
                key = (owner_id, effect.timer_id)
                observer = self.observers[owner_id]
                old = self._timers.get(key)
                if old is not None:
                    old["cancelled"] = True
                    observer.emit(TIMER_CANCELLED, timer=effect.timer_id[0],
                                  reason="rearm")
                entry = {"cancelled": False}
                self._timers[key] = entry
                observer.emit(TIMER_ARMED, timer=effect.timer_id[0])

                def fire(key=key, entry=entry, owner=owner_id):
                    if entry["cancelled"]:
                        return
                    self._timers.pop(key, None)
                    self.observers[owner].emit(TIMER_FIRED, timer=key[1][0])
                    self.execute(owner, self._engines[owner].on_timer(key[1]))

                self._push(effect.delay, fire)
            elif isinstance(effect, CancelTimer):
                entry = self._timers.pop((owner_id, effect.timer_id), None)
                if entry is not None:
                    entry["cancelled"] = True
                    self.observers[owner_id].emit(
                        TIMER_CANCELLED, timer=effect.timer_id[0], reason="cancel"
                    )
            elif isinstance(effect, Connect):
                self.execute(owner_id, engine.on_connected(effect.target))
            elif isinstance(effect, OpCompleted):
                callback = self.callbacks.pop(effect.op_id, None)
                if callback is not None:
                    callback(effect.outcome)
            elif isinstance(effect, OpFailed):
                self.failures.append(effect)
            else:  # pragma: no cover - future effect kinds
                raise TypeError(f"unknown effect {effect!r}")

    def _deliver(self, effect: SendFrame) -> None:
        engine = self._engines.get(effect.destination)
        if engine is None:
            return  # e.g. acks to the control plane
        self.execute(effect.destination, engine.on_frame(effect.frame))

    def run(self) -> None:
        while self._heap:
            self.now, _, action = heapq.heappop(self._heap)
            action()


def build_memory_stack(num_shards=1, num_groups=1, use_proxy=False, hub=None,
                       read_cache=0, lease_ttl=1000.0, bounded_staleness=False,
                       num_clients=1):
    """A full client/proxy/servers stack wired through a MemoryFabric.

    ``hub`` optionally attaches an :class:`~repro.observe.ObserverHub`: every
    engine gets a scoped observer and the fabric emits timer lifecycle events
    the way the real adapters do.  ``read_cache`` arms the proxy's
    lease-backed read cache (the default ``lease_ttl`` of 1000 fabric units
    keeps expiry out of short scripts; shrink it to exercise the timers).
    ``num_clients`` > 1 registers extra clients ``c2..cN`` sharing the proxy.
    """
    shard_map = ShardMap(num_shards, num_groups=num_groups,
                         readers=num_clients, writers=num_clients)
    fabric = MemoryFabric()
    if hub is not None:
        hub.clock = lambda: fabric.now

    def scoped(tier, component):
        return hub.scoped(tier, component) if hub is not None else None

    ticks = itertools.count()
    recorder = KVHistoryRecorder(lambda: float(next(ticks)))
    for group in shard_map.groups.values():
        hosted = {
            spec.shard_id: spec.epoch for spec in shard_map.shards_on(group.group_id)
        }
        for server_id in group.servers:
            observer = scoped("replica", server_id)
            fabric.register(
                server_id,
                GroupServerEngine(server_id, group.protocol, dict(hosted),
                                  observer=observer, lease_ttl=lease_ttl),
                observer=observer,
            )
    proxy = None
    if use_proxy:
        proxy_observer = scoped("proxy", "p1")
        read_round_trips = max(
            (group.protocol.read_round_trips
             for group in shard_map.groups.values()),
            default=2,
        )
        proxy = ProxyEngine(
            "p1", CachedShardView(shard_map), policy=SIM_RETRY_POLICY,
            observer=proxy_observer,
            read_cache=read_cache, lease_ttl=lease_ttl,
            bounded_staleness=bounded_staleness,
            read_round_trips=read_round_trips,
        )
        fabric.register("p1", proxy, observer=proxy_observer)
    for extra in range(2, num_clients + 1):
        extra_id = f"c{extra}"
        extra_client = ClientSessionEngine(
            extra_id, shard_map, recorder, policy=SIM_RETRY_POLICY,
            proxy_candidates=["p1"] if use_proxy else [],
            observer=scoped("client", extra_id),
        )
        fabric.register(extra_id, extra_client, observer=scoped("client", extra_id))
        if use_proxy:
            fabric.execute(extra_id, extra_client.on_connected("p1"))
    client_observer = scoped("client", "c1")
    client = ClientSessionEngine(
        "c1",
        shard_map,
        recorder,
        policy=SIM_RETRY_POLICY,
        proxy_candidates=["p1"] if use_proxy else [],
        observer=client_observer,
    )
    fabric.register("c1", client, observer=client_observer)
    if use_proxy:
        fabric.execute("c1", client.on_connected("p1"))
    return shard_map, fabric, client, proxy, recorder


def run_script(fabric, client, script, on_all_done=None):
    """Issue ``(kind, key, value)`` ops closed-loop through the fabric.

    ``on_all_done`` fires at the final operation's completion -- *before*
    the fabric drains trailing timers -- so callers can snapshot state at
    the moment the script (not the run) ends.
    """
    remaining = list(script)
    outcomes = []

    def issue_next(_outcome=None) -> None:
        if _outcome is not None:
            outcomes.append(_outcome)
        if not remaining:
            if len(outcomes) == len(script) and on_all_done is not None:
                on_all_done()
            return
        kind, key, value = remaining.pop(0)
        op_id, effects = client.invoke(kind, key, value)
        fabric.callbacks[op_id] = issue_next
        fabric.execute("c1", effects)

    issue_next()
    fabric.run()
    return outcomes


SCRIPT = [
    (OpKind.WRITE, "alpha", "v1"),
    (OpKind.WRITE, "beta", "v2"),
    (OpKind.READ, "alpha", None),
    (OpKind.READ, "beta", None),
    (OpKind.WRITE, "alpha", "v3"),
    (OpKind.READ, "alpha", None),
]

#: The cached-read variant: repeat reads (the second of each pair is a cache
#: hit behind a read-cache proxy) interleaved with writes that invalidate.
CACHED_SCRIPT = [
    (OpKind.WRITE, "alpha", "v1"),
    (OpKind.READ, "alpha", None),
    (OpKind.READ, "alpha", None),
    (OpKind.WRITE, "alpha", "v2"),
    (OpKind.READ, "alpha", None),
    (OpKind.READ, "alpha", None),
    (OpKind.WRITE, "beta", "v3"),
    (OpKind.READ, "beta", None),
    (OpKind.READ, "beta", None),
    (OpKind.READ, "alpha", None),
]


# -- effect tracing at the engine boundary --------------------------------------

_TAPPED = (
    "invoke",
    "on_frame",
    "on_timer",
    "on_connected",
    "on_connect_failed",
    "on_peer_lost",
    "on_frame_undeliverable",
)


def normalize(effect):
    """The transport-independent shadow of one effect (None = ignore).

    Timer effects are dropped: their *ids* are shared, but which timers a
    deployment arms is timing configuration (the simulator runs a failover
    watchdog, asyncio runs round timeouts), not protocol behaviour.
    """
    if isinstance(effect, SendFrame):
        return ("send", effect.destination, effect.frame.kind)
    if isinstance(effect, OpCompleted):
        return ("done", effect.key, effect.outcome.value)
    if isinstance(effect, OpFailed):
        return ("fail", effect.key)
    return None


def tap(engine, trace):
    """Record every effect ``engine`` emits, at the engine boundary."""
    for name in _TAPPED:
        original = getattr(engine, name, None)
        if original is None:
            continue  # not every engine has the full client surface

        def wrapper(*args, _original=original, **kwargs):
            result = _original(*args, **kwargs)
            effects = result[1] if isinstance(result, tuple) else result
            for effect in effects:
                shadow = normalize(effect)
                if shadow is not None:
                    trace.append(shadow)
            return result

        setattr(engine, name, wrapper)


def memory_trace(use_proxy=False, hub=None, script=SCRIPT, read_cache=0):
    _, fabric, client, proxy, recorder = build_memory_stack(
        use_proxy=use_proxy, hub=hub, read_cache=read_cache
    )
    client_trace, proxy_trace = [], []
    tap(client, client_trace)
    if proxy is not None:
        tap(proxy, proxy_trace)
    # Snapshot the traces at the last completion: trailing lease timers
    # firing at virtual-clock quiescence are run-length artifacts (the
    # wall-clock backend cancels them at shutdown instead), not script
    # behaviour.
    cut = {}
    run_script(fabric, client, script,
               on_all_done=lambda: cut.update(
                   client=len(client_trace), proxy=len(proxy_trace)))
    verdict = check_per_key_atomicity(recorder.histories())
    assert verdict.all_atomic, verdict.summary()
    return (client_trace[: cut.get("client")],
            proxy_trace[: cut.get("proxy")])


def sim_trace(use_proxy=False, script=SCRIPT, read_cache=0):
    shard_map = ShardMap(1, num_groups=1, readers=1, writers=1)
    cluster = SimKVCluster(
        shard_map, ["c1"], num_proxies=1 if use_proxy else 0,
        read_cache=read_cache, lease_ttl=1000.0,
    )
    client_trace, proxy_trace = [], []
    tap(cluster.clients["c1"].engine, client_trace)
    if use_proxy:
        tap(cluster.proxies["p1"].engine, proxy_trace)
    remaining = list(script)
    cut = {}

    def issue_next(_outcome=None) -> None:
        if not remaining:
            # Same snapshot as the memory harness: the script is over; what
            # the virtual clock drains afterwards is not its behaviour.
            cut.setdefault("client", len(client_trace))
            cut.setdefault("proxy", len(proxy_trace))
            return
        kind, key, value = remaining.pop(0)
        if kind is OpKind.WRITE:
            cluster.clients["c1"].put(key, value, on_complete=issue_next)
        else:
            cluster.clients["c1"].get(key, on_complete=issue_next)

    cluster.events.schedule(0.0, issue_next, label="script")
    cluster.run()
    verdict = check_per_key_atomicity(cluster.recorder.histories())
    assert verdict.all_atomic, verdict.summary()
    return (client_trace[: cut.get("client")],
            proxy_trace[: cut.get("proxy")])


def asyncio_trace(use_proxy=False, script=SCRIPT, read_cache=0):
    import asyncio

    from repro.kvstore import AsyncKVCluster, KVStore

    async def scenario():
        shard_map = ShardMap(1, num_groups=1, readers=1, writers=1)
        cluster = AsyncKVCluster(shard_map, lease_ttl=1000.0)
        await cluster.start()
        if use_proxy:
            await cluster.start_proxies(1, read_cache=read_cache)
        store = KVStore(cluster, client_id="c1", use_proxy="p1" if use_proxy else None)
        await store.connect()
        client_trace, proxy_trace = [], []
        tap(store.engine, client_trace)
        if use_proxy:
            tap(cluster.proxies["p1"].engine, proxy_trace)
        try:
            for kind, key, value in script:
                if kind is OpKind.WRITE:
                    await store.put(key, value)
                else:
                    await store.get(key)
            verdict = store.check()
            assert verdict.all_atomic, verdict.summary()
        finally:
            await store.close()
            await cluster.stop()
        return client_trace, proxy_trace

    return asyncio.run(scenario())


class TestCrossBackendEquivalence:
    """Both adapters must produce the engine effect stream the pure harness
    does -- the no-drift-by-construction property of the extraction."""

    def test_memory_harness_is_deterministic(self):
        first = memory_trace()
        second = memory_trace()
        assert first == second
        assert first[0]  # the trace is not trivially empty

    def test_direct_effect_sequences_are_identical(self):
        memory, _ = memory_trace(use_proxy=False)
        sim, _ = sim_trace(use_proxy=False)
        net, _ = asyncio_trace(use_proxy=False)
        assert memory == sim == net
        # Sanity: the script really produced replica sends and completions.
        assert sum(1 for kind, *_ in memory if kind == "send") >= 3 * 2 * len(SCRIPT)
        assert sum(1 for kind, *_ in memory if kind == "done") == len(SCRIPT)

    def test_proxied_effect_sequences_are_identical(self):
        memory_client, memory_proxy = memory_trace(use_proxy=True)
        sim_client, sim_proxy = sim_trace(use_proxy=True)
        net_client, net_proxy = asyncio_trace(use_proxy=True)
        assert memory_client == sim_client == net_client
        assert memory_proxy == sim_proxy == net_proxy
        # Every client send goes to the proxy; the proxy fans out to replicas.
        assert all(dest == "p1" for kind, dest, _ in memory_client if kind == "send")
        assert any(dest.startswith("g1-") for kind, dest, _ in memory_proxy
                   if kind == "send")

    def test_cached_read_effect_sequences_are_identical(self):
        # The lease-backed read cache changes what the proxy sends (grant
        # releases, fewer replica rounds) -- but it must change it the SAME
        # way on every backend.  Lease ttl is 1000 units/seconds in all
        # three stacks, so no expiry timer fires mid-script and the traces
        # are timer-free protocol behaviour only.
        memory_client, memory_proxy = memory_trace(
            use_proxy=True, script=CACHED_SCRIPT, read_cache=8
        )
        sim_client, sim_proxy = sim_trace(
            use_proxy=True, script=CACHED_SCRIPT, read_cache=8
        )
        net_client, net_proxy = asyncio_trace(
            use_proxy=True, script=CACHED_SCRIPT, read_cache=8
        )
        assert memory_client == sim_client == net_client
        assert memory_proxy == sim_proxy == net_proxy
        # The cache really served repeat reads: the proxy sent fewer read
        # sub-rounds than the uncached run of the same script needs.
        uncached_client, uncached_proxy = memory_trace(
            use_proxy=True, script=CACHED_SCRIPT, read_cache=0
        )
        def replica_sends(trace):
            return sum(1 for kind, dest, _ in trace
                       if kind == "send" and dest.startswith("g1-"))
        assert replica_sends(memory_proxy) < replica_sends(uncached_proxy)
        # And every operation still completed through the client.
        assert sum(1 for kind, *_ in memory_client if kind == "done") == \
            len(CACHED_SCRIPT)

    def test_memory_stack_survives_a_live_resize_with_delta_push(self):
        shard_map, fabric, client, proxy, recorder = build_memory_stack(
            num_shards=4, num_groups=2, use_proxy=True
        )
        run_script(fabric, client, [(OpKind.WRITE, f"k{i}", f"v{i}") for i in range(8)])
        # Live rebalance: the control engine drives the frame-based drain and
        # the delta push through the fabric -- the identical frame/effect
        # sequence both cluster backends execute.  The retry delay must sit
        # above the fabric's 2.0-unit round trip or resends declare live
        # replicas dead.
        control = ControlPlaneEngine(shard_map, proxy_ids=["p1"], retry_delay=10.0)
        fabric.register(CONTROL_PLANE, control)
        report, effects = control.start_resize(8)
        fabric.execute(CONTROL_PLANE, effects)
        fabric.run()
        assert report.done
        assert control.drains_completed == 1
        run_script(fabric, client, [(OpKind.READ, f"k{i}", None) for i in range(8)])
        verdict = check_per_key_atomicity(recorder.histories())
        assert verdict.all_atomic, verdict.summary()
        assert proxy.view.deltas_applied == 1
        assert proxy.stale_replays == 0  # the push made the resize bounce-free


class TestFrameAccounting:
    def test_undeliverable_frames_are_uncounted(self):
        # "Every frame on the wire is counted exactly once": a frame the
        # transport could not deliver never hit the wire, so reporting it
        # undeliverable must uncount it -- the replayed attempt counts its
        # own frames, keeping totals honest across kill/reconnect windows.
        shard_map = ShardMap(1, num_groups=1, readers=1, writers=1)
        ticks = itertools.count()
        recorder = KVHistoryRecorder(lambda: float(next(ticks)))
        client = ClientSessionEngine("c1", shard_map, recorder,
                                     policy=SIM_RETRY_POLICY)
        _, effects = client.invoke(OpKind.WRITE, "k", "v")
        effects += client.on_timer(("flush", "g1"))
        sends = [e for e in effects if isinstance(e, SendFrame)]
        assert len(sends) == 3  # one batch frame per replica of the group
        assert client.stats.frames_sent == 3
        before_rounds = client.stats.rounds
        client.on_frame_undeliverable(
            sends[0].frame, ConnectionResetError("down"), retryable=True
        )
        assert client.stats.frames_sent == 2
        assert client.stats.rounds == before_rounds  # coalescing stats intact


# -- the observer seam ----------------------------------------------------------


def _timer_counters(snapshot, tier):
    counters = snapshot[tier]["counters"]
    return (counters["timers_armed"], counters["timers_fired"],
            counters["timers_cancelled"])


def _assert_timer_lifecycle(snapshot, tiers=("client", "proxy")):
    """Every armed timer is accounted exactly once: fired or cancelled."""
    for tier in tiers:
        if tier not in snapshot:
            continue
        armed, fired, cancelled = _timer_counters(snapshot, tier)
        assert armed == fired + cancelled, (
            f"{tier}: {armed} armed != {fired} fired + {cancelled} cancelled"
        )


class TestObserverSeam:
    """Observation is a side channel: attaching observers must not change a
    single engine effect, and every armed timer must resolve exactly once."""

    def test_observer_does_not_perturb_direct_effects(self):
        plain = memory_trace(use_proxy=False)
        hub = ObserverHub()
        hub.add_sink(MetricsObserver())
        observed = memory_trace(use_proxy=False, hub=hub)
        assert plain == observed

    def test_observer_does_not_perturb_proxied_effects(self):
        plain = memory_trace(use_proxy=True)
        hub = ObserverHub()
        hub.add_sink(MetricsObserver())
        observed = memory_trace(use_proxy=True, hub=hub)
        assert plain == observed

    def test_memory_timer_lifecycle_direct(self):
        hub = ObserverHub()
        metrics = hub.add_sink(MetricsObserver())
        memory_trace(use_proxy=False, hub=hub)
        snapshot = metrics.registry.snapshot()
        armed, _, _ = _timer_counters(snapshot, "client")
        assert armed > 0  # flush timers at least
        _assert_timer_lifecycle(snapshot)

    def test_memory_timer_lifecycle_proxied_includes_watchdog(self):
        hub = ObserverHub()
        metrics = hub.add_sink(MetricsObserver())
        memory_trace(use_proxy=True, hub=hub)
        snapshot = metrics.registry.snapshot()
        # The sim retry policy arms the proxy-failover watchdog on every
        # proxied dispatch; a healthy proxy means it must be *cancelled*,
        # never leaked.
        _, _, cancelled = _timer_counters(snapshot, "client")
        assert cancelled > 0
        _assert_timer_lifecycle(snapshot)

    def test_sim_timer_lifecycle_proxied_resize(self):
        workload = generate_workload(num_clients=2, ops_per_client=12,
                                     num_keys=12, seed=3)
        result = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2, use_proxy=True,
            num_proxies=2, resize_to=6,
        )
        assert result.check().all_atomic
        assert result.metrics is not None
        _assert_timer_lifecycle(result.metrics)

    def test_asyncio_timer_lifecycle_proxied(self):
        from repro.kvstore import run_asyncio_kv_workload

        workload = generate_workload(num_clients=2, ops_per_client=8,
                                     num_keys=8, seed=3)
        result = run_asyncio_kv_workload(
            workload, num_shards=2, use_proxy=True, num_proxies=1
        )
        assert result.check().all_atomic
        assert result.metrics is not None
        # Round timeouts armed by the asyncio policy resolve through the
        # cancel path; watchdogs stranded at close resolve through shutdown.
        _assert_timer_lifecycle(result.metrics)


# -- delta view pushes ----------------------------------------------------------


class TestDeltaViewPush:
    def test_resize_delta_is_o_moved_not_o_shards(self):
        # 1024 shards on 4 groups; adding 2 shards must push only the added
        # shards plus the donors their ring arcs fence -- a handful of
        # entries, where the full snapshot carries all 1026.
        shard_map = ShardMap(1024, num_groups=4, virtual_nodes=8,
                             readers=1, writers=1)
        plan = shard_map.resize(1026)
        delta = shard_map.view_delta(plan)
        assert delta is not None and delta["delta"] is True
        full = shard_map.view_snapshot()
        assert len(full["routes"]) == 1026
        assert set(delta["added"]) == {spec.shard_id for spec in plan.added}
        # Each added shard has 8 virtual nodes, each fencing at most one
        # donor: the delta is bounded by moved work, not by shard count.
        assert len(delta["routes"]) <= 2 + 2 * 8
        assert len(delta["routes"]) < len(full["routes"]) / 50

    def test_delta_applies_like_the_full_snapshot(self):
        shard_map = ShardMap(4, num_groups=2)
        by_delta = CachedShardView(shard_map)
        by_refresh = CachedShardView(shard_map)
        plan = shard_map.resize(7)
        assert by_delta.apply_push(shard_map.view_delta(plan)) is True
        by_refresh.refresh()
        for key in ("a", "b", "user:7", "zz", "hot"):
            assert by_delta.resolve(key) == by_refresh.resolve(key)
        assert by_delta.ring_epoch == shard_map.ring_epoch
        assert by_delta.deltas_applied == 1

    def test_move_delta_carries_one_route(self):
        shard_map = ShardMap(4, num_groups=2)
        view = CachedShardView(shard_map)
        plan = shard_map.move_shard("sh1", "g2")
        delta = shard_map.view_delta(plan)
        assert list(delta["routes"]) == ["sh1"]
        assert view.apply_push(delta) is True
        assert view._routes["sh1"].group_id == "g2"
        assert view._routes["sh1"].epoch == shard_map.shards["sh1"].epoch

    def test_out_of_order_deltas_adopt_monotonically(self):
        shard_map = ShardMap(2, num_groups=2)
        view = CachedShardView(shard_map)
        delta1 = shard_map.view_delta(shard_map.resize(4))      # ring 1 -> 2
        delta2 = shard_map.view_delta(shard_map.move_shard("sh1", "g2"))  # ring 2
        # Reordered: the move delta's base (ring 2) was never adopted.
        assert view.apply_push(delta2) is False
        assert view.deltas_skipped == 1
        assert view.ring_epoch == 1  # nothing rolled forward half-applied
        assert view.apply_push(delta1) is True
        assert view.apply_push(delta2) is True
        assert view._routes["sh1"].epoch == shard_map.shards["sh1"].epoch
        # Replaying either delta is harmless: the view never rolls back.
        assert view.apply_push(delta1) is False
        assert view._routes["sh1"].epoch == shard_map.shards["sh1"].epoch

    def test_resize_noop_produces_no_push_frames(self):
        shard_map = ShardMap(4, num_groups=2)
        plan = shard_map.resize(4)
        assert shard_map.view_delta(plan) is None
        assert view_push_frames(shard_map, ["p1", "p2"], plan=plan) == []

    def test_dropped_delta_falls_back_to_the_epoch_fence_bounce(self):
        # Phase 1 runs, then a resize whose push is suppressed (the dropped
        # delta), then a resize whose push goes out: the second delta's base
        # is unknown to the proxies, so they skip it and discover both
        # rebalances the hard way -- stale bounces, replay, still atomic.
        shard_map = ShardMap(4, num_groups=2, readers=2, writers=2)
        cluster = SimKVCluster(shard_map, ["c1", "c2"], num_proxies=2)
        client = cluster.clients["c1"]
        for i in range(8):
            client.put(f"k{i}", f"v{i}")
        cluster.run()
        cluster.push_views = False
        cluster.resize(6)          # this delta is never pushed
        cluster.push_views = True
        cluster.resize(9)          # pushed, but its base is missing
        cluster.run()
        for proxy in cluster.proxies.values():
            assert proxy.view.deltas_skipped >= 1
            assert proxy.view.deltas_applied == 0
        seen = {}
        for i in range(8):
            client.get(f"k{i}",
                       on_complete=lambda o, i=i: seen.__setitem__(i, o.value))
        cluster.run()
        assert seen == {i: f"v{i}" for i in range(8)}
        # The fence caught the staleness: at least one bounce-and-replay.
        assert cluster.stale_replays() >= 1
        verdict = check_per_key_atomicity(cluster.recorder.histories())
        assert verdict.all_atomic, verdict.summary()

    def test_full_workload_with_delta_pushes_stays_atomic_on_both_backends(self):
        workload = generate_workload(num_clients=3, ops_per_client=12,
                                     num_keys=16, seed=17, pipeline_depth=4)
        result = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2, resize_to=8,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.view_pushes == 2
        assert result.check().all_atomic
        from repro.kvstore import run_asyncio_kv_workload

        net = run_asyncio_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2, resize_to=8,
        )
        assert net.completed_ops == workload.total_operations()
        assert net.check().all_atomic


# -- the import ban -------------------------------------------------------------


class TestEngineImportBan:
    """``repro.kvstore.engine`` must stay free of asyncio and repro.sim."""

    ENGINE_DIR = Path(engine_package.__file__).resolve().parent

    def _imports_of(self, path: Path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        package_parts = ("repro", "kvstore", "engine")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    yield node.module or ""
                else:
                    # Resolve the relative import against the engine package.
                    base = package_parts[: len(package_parts) - (node.level - 1)]
                    module = node.module or ""
                    yield ".".join(filter(None, [".".join(base), module]))

    def test_static_no_asyncio_or_sim_imports(self):
        checked = 0
        for path in sorted(self.ENGINE_DIR.glob("*.py")):
            for module in self._imports_of(path):
                assert module != "asyncio" and not module.startswith("asyncio."), (
                    f"{path.name} imports asyncio"
                )
                assert not module.startswith("repro.sim"), (
                    f"{path.name} imports {module}"
                )
            checked += 1
        assert checked >= 6  # the whole package was scanned

    def test_runtime_import_pulls_in_neither_transport(self):
        src = Path(engine_package.__file__).resolve().parents[3]
        code = (
            "import sys\n"
            "import repro.kvstore.engine\n"
            "bad = [m for m in sys.modules\n"
            "       if m == 'asyncio' or m.startswith('asyncio.')\n"
            "       or m == 'repro.sim' or m.startswith('repro.sim.')]\n"
            "assert not bad, bad\n"
        )
        env = dict(os.environ, PYTHONPATH=str(src))
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=env, timeout=60
        )
