"""Tests for the asyncio transport: codec, replica server, cluster runs."""

from __future__ import annotations

import asyncio

import pytest

from repro.asyncio_net.cluster import LocalCluster, run_closed_loop_workload
from repro.asyncio_net.codec import decode_message, encode_message
from repro.asyncio_net.server import ReplicaServer
from repro.consistency import check_atomicity
from repro.core.timestamps import Tag
from repro.protocols.codec import encode_tag
from repro.protocols.registry import build_protocol
from repro.protocols.server_state import TagValueServer
from repro.sim.messages import Message
from repro.util.ids import server_ids


class TestCodec:
    def test_message_round_trip(self):
        message = Message(
            "r1", "s1", "read", {"val_queue": {"1|w1": "x"}}, op_id="op-1", round_trip=2
        )
        encoded = encode_message(message)
        decoded = decode_message(encoded[4:])
        assert decoded.sender == "r1" and decoded.receiver == "s1"
        assert decoded.kind == "read"
        assert decoded.payload == {"val_queue": {"1|w1": "x"}}
        assert decoded.op_id == "op-1" and decoded.round_trip == 2

    def test_frame_length_prefix(self):
        message = Message("a", "b", "ping")
        encoded = encode_message(message)
        length = int.from_bytes(encoded[:4], "big")
        assert length == len(encoded) - 4


class TestReplicaServer:
    def test_serves_requests_over_tcp(self):
        async def scenario():
            replica = ReplicaServer(TagValueServer("s1"))
            await replica.start()
            try:
                reader, writer = await asyncio.open_connection(replica.host, replica.port)
                from repro.asyncio_net.codec import read_frame, write_frame

                await write_frame(
                    writer,
                    Message("w1", "s1", "update",
                            {"tag": encode_tag(Tag(1, "w1")), "value": "hello"}),
                )
                reply = await read_frame(reader)
                assert reply.kind == "update-ack"
                await write_frame(writer, Message("r1", "s1", "query"))
                reply = await read_frame(reader)
                assert reply.payload["value"] == "hello"
                writer.close()
                await writer.wait_closed()
                assert replica.requests_served == 2
            finally:
                await replica.stop()

        asyncio.run(scenario())

    def test_reconnect_keeps_peer_routing_to_new_connection(self):
        """A peer that redials must keep receiving out-of-band frames.

        The old connection's teardown races the new registration: its
        cleanup must not delete the peer-map entry once it points at the
        new writer, or lease invalidations and deferred batch-acks would
        silently drop until the peer's next inbound frame.
        """

        class EffectStub:
            """Effect-driven logic: 'push' frames ask the server to send
            an out-of-band frame to another peer; everything else pongs."""

            server_id = "s1"

            def on_frame(self, frame):
                from repro.kvstore.engine.effects import SendFrame

                if frame.kind == "push":
                    dest = frame.payload["to"]
                    return [SendFrame(dest, Message("s1", dest, "oob"))]
                return [SendFrame(frame.sender, frame.reply("pong", {}))]

            def on_timer(self, timer_id):
                return []

        async def scenario():
            from repro.asyncio_net.codec import read_frame, write_frame

            replica = ReplicaServer(EffectStub())
            await replica.start()
            try:
                r1, w1 = await asyncio.open_connection(replica.host, replica.port)
                await write_frame(w1, Message("p1", "s1", "hello"))
                assert (await read_frame(r1)).kind == "pong"
                # The peer redials: the same sender id now maps to the new
                # connection, while the old one is still open.
                r2, w2 = await asyncio.open_connection(replica.host, replica.port)
                await write_frame(w2, Message("p1", "s1", "hello"))
                assert (await read_frame(r2)).kind == "pong"
                # Tear the OLD connection down; its cleanup must leave the
                # remapped peer entry alone.
                w1.close()
                await w1.wait_closed()
                await asyncio.sleep(0.05)
                r3, w3 = await asyncio.open_connection(replica.host, replica.port)
                await write_frame(w3, Message("q1", "s1", "push", {"to": "p1"}))
                oob = await asyncio.wait_for(read_frame(r2), timeout=2.0)
                assert oob.kind == "oob" and oob.receiver == "p1"
                for w in (w2, w3):
                    w.close()
                    await w.wait_closed()
            finally:
                await replica.stop()

        asyncio.run(scenario())


class TestClusterIntegration:
    @pytest.mark.parametrize("key,expected_read_rtts", [
        ("abd-mwmr", 2),
        ("fast-read-mwmr", 1),
    ])
    def test_closed_loop_is_atomic(self, key, expected_read_rtts):
        protocol = build_protocol(key, server_ids(5), 1, readers=2, writers=2)
        result = run_closed_loop_workload(protocol, writes_per_writer=3, reads_per_reader=5)
        verdict = check_atomicity(result.history)
        assert verdict.atomic, verdict.report.summary()
        assert max(result.read_round_trips) == expected_read_rtts
        assert len(result.read_latencies) == 10
        assert result.read_stats().p50 > 0

    def test_single_writer_fast_register(self):
        protocol = build_protocol("fast-swmr", server_ids(5), 1, readers=2)
        result = run_closed_loop_workload(protocol, writes_per_writer=3, reads_per_reader=4)
        assert check_atomicity(result.history).atomic
        assert max(result.write_round_trips) == 1
        assert max(result.read_round_trips) == 1

    def test_cluster_start_stop_idempotent(self):
        async def scenario():
            protocol = build_protocol("abd-mwmr", server_ids(3), 1)
            cluster = LocalCluster(protocol)
            await cluster.start()
            assert len(cluster.replicas) == 3
            assert len(cluster.writers) == 2 and len(cluster.readers) == 2
            await cluster.stop()
            assert not cluster.replicas and not cluster.writers

        asyncio.run(scenario())

    def test_client_straggler_replies_ignored(self):
        async def scenario():
            protocol = build_protocol("abd-mwmr", server_ids(3), 1)
            cluster = LocalCluster(protocol)
            await cluster.start()
            try:
                writer = next(iter(cluster.writers.values()))
                reader = next(iter(cluster.readers.values()))
                for i in range(3):
                    await writer.write(f"v{i}")
                outcome = await reader.read()
                assert outcome.outcome.value == "v2"
                assert outcome.round_trips == 2
            finally:
                await cluster.stop()

        asyncio.run(scenario())
