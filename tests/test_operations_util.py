"""Tests for operation records and the small utility modules."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.operations import Event, EventKind, Operation, OpKind, new_op_id
from repro.core.timestamps import Tag
from repro.util.ids import IdGenerator, client_ids, server_ids
from repro.util.rng import SeededRng
from repro.util.stats import percentile, summarize


class TestOperations:
    def test_new_op_id_unique(self):
        ids = {new_op_id("x") for _ in range(100)}
        assert len(ids) == 100

    def test_precedes(self):
        a = Operation("a", "w1", OpKind.WRITE, start=0.0, finish=1.0)
        b = Operation("b", "r1", OpKind.READ, start=2.0, finish=3.0)
        assert a.precedes(b)
        assert not b.precedes(a)
        assert not a.concurrent_with(b)

    def test_concurrent(self):
        a = Operation("a", "w1", OpKind.WRITE, start=0.0, finish=5.0)
        b = Operation("b", "r1", OpKind.READ, start=2.0, finish=3.0)
        assert a.concurrent_with(b) and b.concurrent_with(a)

    def test_pending_never_precedes(self):
        a = Operation("a", "w1", OpKind.WRITE, start=0.0, finish=None)
        b = Operation("b", "r1", OpKind.READ, start=10.0, finish=11.0)
        assert not a.precedes(b)
        assert b.precedes(a) is False  # b finished before a started? no: a started at 0

    def test_latency(self):
        op = Operation("a", "w1", OpKind.WRITE, start=1.0, finish=3.5)
        assert op.latency == pytest.approx(2.5)
        assert Operation("b", "w1", OpKind.WRITE, start=1.0).latency is None

    def test_kind_predicates(self):
        read = Operation("a", "r1", OpKind.READ, start=0.0)
        write = Operation("b", "w1", OpKind.WRITE, start=0.0)
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_event_predicates(self):
        inv = Event(EventKind.INVOCATION, OpKind.READ, "op", "r1", 0.0)
        resp = Event(EventKind.RESPONSE, OpKind.READ, "op", "r1", 1.0, tag=Tag(1, "w1"))
        assert inv.is_invocation and not inv.is_response
        assert resp.is_response and resp.tag == Tag(1, "w1")


class TestIds:
    def test_server_ids(self):
        assert server_ids(3) == ["s1", "s2", "s3"]

    def test_client_ids(self):
        assert client_ids("r", 2) == ["r1", "r2"]

    def test_generator(self):
        gen = IdGenerator("op")
        assert gen.next() == "op-1"
        assert gen.next() == "op-2"


class TestRng:
    def test_deterministic(self):
        a, b = SeededRng(42), SeededRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a, b = SeededRng(1), SeededRng(2)
        assert [a.randint(0, 10**6) for _ in range(5)] != [
            b.randint(0, 10**6) for _ in range(5)
        ]

    def test_fork_independent(self):
        parent = SeededRng(7)
        child = parent.fork(1)
        assert child.seed != parent.seed

    def test_sample_and_shuffle_preserve_elements(self):
        rng = SeededRng(3)
        population = list(range(20))
        sample = rng.sample(population, 5)
        assert len(sample) == 5 and set(sample) <= set(population)
        shuffled = rng.shuffle(population)
        assert sorted(shuffled) == population
        assert population == list(range(20))  # original untouched

    def test_zipf_index_in_range(self):
        rng = SeededRng(5)
        for _ in range(100):
            assert 0 <= rng.zipf_index(10, skew=1.2) < 10

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRng(0).zipf_index(0)

    def test_zipf_skews_to_small_indices(self):
        rng = SeededRng(11)
        draws = [rng.zipf_index(50, skew=1.5) for _ in range(500)]
        assert draws.count(0) > draws.count(25)


class TestStats:
    def test_percentile_basics(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    def test_summarize(self):
        stats = summarize([5.0, 1.0, 3.0])
        assert stats.count == 3
        assert stats.minimum == 1.0 and stats.maximum == 5.0
        assert stats.mean == pytest.approx(3.0)
        assert stats.as_dict()["p50"] == 3.0

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats.count == 0 and stats.mean == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_percentiles_within_bounds(self, samples):
        stats = summarize(samples)
        assert stats.minimum <= stats.p50 <= stats.maximum
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
