"""Tests for the cluster-based register atomicity checker.

Each anomaly the paper's impossibility arguments predict (stale reads,
new/old inversions, reads from the future) is constructed by hand and must be
caught; canonical atomic histories must pass and yield a valid linearization.
"""

from __future__ import annotations


from repro.consistency.anomalies import AnomalyKind
from repro.consistency.history import History
from repro.consistency.register_checker import check_register_atomicity
from repro.core.operations import Operation, OpKind
from repro.core.timestamps import BOTTOM_TAG, Tag

W1_TAG = Tag(1, "w1")
W2_TAG = Tag(2, "w2")
W3_TAG = Tag(3, "w1")


def write(op_id, client, start, finish, tag, value=None):
    return Operation(op_id, client, OpKind.WRITE, start, finish, value or op_id, tag)


def read(op_id, client, start, finish, tag, value=None):
    return Operation(op_id, client, OpKind.READ, start, finish, value or str(tag), tag)


def check(*ops):
    return check_register_atomicity(History(list(ops)))


class TestAtomicHistories:
    def test_empty_history(self):
        result = check()
        assert result.atomic

    def test_sequential_write_then_read(self):
        result = check(
            write("w", "w1", 0, 1, W1_TAG),
            read("r", "r1", 2, 3, W1_TAG),
        )
        assert result.atomic
        assert [op.op_id for op in result.linearization] == ["w", "r"]

    def test_read_of_initial_value_before_write(self):
        result = check(
            read("r", "r1", 0, 1, BOTTOM_TAG),
            write("w", "w1", 2, 3, W1_TAG),
        )
        assert result.atomic
        assert result.linearization[0].op_id == "r"

    def test_concurrent_reads_split_across_write(self):
        # r1 reads old, r2 reads new, both concurrent with the write: fine.
        result = check(
            write("w", "w1", 0, 10, W1_TAG),
            read("r1", "r1", 1, 2, BOTTOM_TAG),
            read("r2", "r2", 3, 4, W1_TAG),
        )
        assert result.atomic

    def test_concurrent_writes_any_order(self):
        result = check(
            write("a", "w1", 0, 10, W1_TAG),
            write("b", "w2", 0, 10, W2_TAG),
            read("r", "r1", 11, 12, W1_TAG),
        )
        # Reading the smaller tag is fine when the writes were concurrent:
        # linearize W2 first, then W1, then the read.
        assert result.atomic

    def test_pending_write_observed(self):
        pending = Operation("w", "w1", OpKind.WRITE, 0, None, "x", W1_TAG)
        result = check(pending, read("r", "r1", 5, 6, W1_TAG))
        assert result.atomic

    def test_pending_unread_write_ignored(self):
        pending = Operation("w", "w1", OpKind.WRITE, 0, None, "x", W1_TAG)
        result = check(pending, read("r", "r1", 5, 6, BOTTOM_TAG))
        assert result.atomic

    def test_linearization_respects_real_time(self):
        ops = [
            write("a", "w1", 0, 1, W1_TAG),
            write("b", "w2", 2, 3, W2_TAG),
            read("r1", "r1", 4, 5, W2_TAG),
            read("r2", "r2", 6, 7, W2_TAG),
        ]
        result = check(*ops)
        assert result.atomic
        order = [op.op_id for op in result.linearization]
        assert order.index("a") < order.index("b") < order.index("r1") < order.index("r2")


class TestViolations:
    def test_stale_read_detected(self):
        # W1 then W2 complete sequentially; a later read returns W1's value.
        result = check(
            write("a", "w1", 0, 1, W1_TAG),
            write("b", "w2", 2, 3, W2_TAG),
            read("r", "r1", 4, 5, W1_TAG),
        )
        assert not result.atomic
        kinds = {a.kind for a in result.anomalies}
        assert AnomalyKind.STALE_READ in kinds or AnomalyKind.ORDERING_CYCLE in kinds

    def test_new_old_inversion_detected(self):
        # W1 completes before W2 starts; W2 is concurrent with the two reads.
        # r1 observes the new value, the later r2 observes the old one: the
        # classic new/old inversion the fast-read impossibility is about.
        result = check(
            write("a", "w1", 0, 1, W1_TAG),
            write("b", "w2", 2, 20, W2_TAG),
            read("r1", "r1", 3, 4, W2_TAG),
            read("r2", "r2", 5, 6, W1_TAG),
        )
        assert not result.atomic
        kinds = {a.kind for a in result.anomalies}
        assert AnomalyKind.NEW_OLD_INVERSION in kinds or AnomalyKind.ORDERING_CYCLE in kinds

    def test_concurrent_writes_inverted_reads_are_atomic(self):
        # When *both* writes span the whole execution the two reads may
        # legitimately observe them in either order (the writes can be
        # linearized around the reads), so this must NOT be flagged.
        result = check(
            write("a", "w1", 0, 20, W1_TAG),
            write("b", "w2", 0, 20, W2_TAG),
            read("r1", "r1", 1, 2, W2_TAG),
            read("r2", "r2", 3, 4, W1_TAG),
        )
        assert result.atomic

    def test_read_from_future_detected(self):
        result = check(
            read("r", "r1", 0, 1, W1_TAG),
            write("a", "w1", 2, 3, W1_TAG),
        )
        assert not result.atomic
        assert any(a.kind is AnomalyKind.READ_FROM_FUTURE for a in result.anomalies)

    def test_read_from_nowhere_detected(self):
        result = check(read("r", "r1", 0, 1, Tag(9, "w9")))
        assert not result.atomic
        assert any(a.kind is AnomalyKind.READ_FROM_NOWHERE for a in result.anomalies)

    def test_initial_value_after_completed_write_detected(self):
        # A read strictly after a completed write must not return the initial
        # value (this is the constraint that required the BOTTOM-first edge).
        result = check(
            write("a", "w1", 0, 1, W1_TAG),
            read("r1", "r1", 2, 3, W1_TAG),
            read("r2", "r2", 4, 5, BOTTOM_TAG),
        )
        assert not result.atomic

    def test_initial_value_inversion_detected(self):
        # Write pending; r1 observes it, r2 later returns the initial value.
        pending = Operation("a", "w1", OpKind.WRITE, 0, None, "x", W1_TAG)
        result = check(
            pending,
            read("r1", "r1", 2, 3, W1_TAG),
            read("r2", "r2", 4, 5, BOTTOM_TAG),
        )
        assert not result.atomic

    def test_duplicate_write_tags_rejected(self):
        result = check(
            write("a", "w1", 0, 1, W1_TAG),
            write("b", "w2", 2, 3, W1_TAG),
        )
        assert not result.atomic

    def test_cycle_reported_with_witnesses(self):
        result = check(
            write("a", "w1", 0, 1, W1_TAG),
            write("b", "w2", 2, 3, W2_TAG),
            read("r", "r1", 4, 5, W1_TAG),
        )
        cycle_anomalies = [
            a for a in result.anomalies if a.kind is AnomalyKind.ORDERING_CYCLE
        ]
        assert cycle_anomalies
        assert cycle_anomalies[0].operations  # carries witness operations


class TestLinearizationValidity:
    def _assert_valid(self, result, history_ops):
        assert result.atomic
        order = result.linearization
        assert len(order) == len(history_ops)
        # register semantics: every read returns the preceding write's tag
        current = BOTTOM_TAG
        for operation in order:
            if operation.is_write:
                current = operation.tag
            else:
                assert operation.tag == current
        # real-time order respected
        position = {op.op_id: i for i, op in enumerate(order)}
        for first in history_ops:
            for second in history_ops:
                if first.precedes(second):
                    assert position[first.op_id] < position[second.op_id]

    def test_valid_linearization_complex(self):
        ops = [
            write("a", "w1", 0, 2, W1_TAG),
            write("b", "w2", 1, 3, W2_TAG),
            write("c", "w1", 5, 7, W3_TAG),
            read("r1", "r1", 2.5, 4, W2_TAG),
            read("r2", "r2", 4.5, 6, W2_TAG),
            read("r3", "r1", 8, 9, W3_TAG),
        ]
        self._assert_valid(check(*ops), ops)
