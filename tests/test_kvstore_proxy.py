"""Tests for the site-local ingress proxy tier (repro.kvstore.proxy)."""

from __future__ import annotations

import asyncio

import pytest

from repro.kvstore import (
    AsyncKVCluster,
    BroadcastReads,
    CachedShardView,
    KVStore,
    NearestQuorum,
    ShardMap,
    check_per_key_atomicity,
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)
from repro.sim.delays import GeoDelay


class TestCachedShardView:
    def test_resolves_like_the_map(self):
        shard_map = ShardMap(4, num_groups=2)
        view = CachedShardView(shard_map)
        for key in ("a", "b", "user:7", "zz"):
            spec = shard_map.shard_for(key)
            route = view.resolve(key)
            assert route.shard_id == spec.shard_id
            assert route.epoch == spec.epoch
            assert route.group_id == spec.group.group_id
            assert route.servers == tuple(spec.group.servers)
            assert route.quorum_size == spec.quorum_size

    def test_stays_stale_until_refreshed(self):
        shard_map = ShardMap(2, num_groups=2)
        view = CachedShardView(shard_map)
        before = view.ring_epoch
        plan = shard_map.resize(6)
        assert plan.fenced  # the resize really fenced donor shards
        # The authoritative map moved on; the snapshot must not have.
        assert view.ring_epoch == before
        assert shard_map.ring_epoch == before + 1
        stale = {key: view.resolve(key).epoch for key in ("a", "b", "c")}
        view.refresh()
        assert view.refreshes == 1
        assert view.ring_epoch == shard_map.ring_epoch
        for key in ("a", "b", "c"):
            fresh = view.resolve(key)
            assert fresh.epoch == shard_map.shard_for(key).epoch
            assert fresh.epoch >= stale[key]

    def test_apply_push_adopts_the_pushed_view(self):
        shard_map = ShardMap(2, num_groups=2)
        view = CachedShardView(shard_map)
        stale_epoch = view.ring_epoch
        shard_map.resize(6)
        # The push alone (no refresh -- no access to the map) must bring the
        # view fully current: same routes as the authoritative map.
        assert view.apply_push(shard_map.view_snapshot()) is True
        assert view.pushes_applied == 1
        assert view.ring_epoch == shard_map.ring_epoch > stale_epoch
        for key in ("a", "b", "user:7", "zz"):
            spec = shard_map.shard_for(key)
            route = view.resolve(key)
            assert route.shard_id == spec.shard_id
            assert route.epoch == spec.epoch
            assert route.servers == tuple(spec.group.servers)

    def test_apply_push_drops_reordered_stale_pushes(self):
        shard_map = ShardMap(2, num_groups=2)
        old_view = shard_map.view_snapshot()
        view = CachedShardView(shard_map)
        shard_map.resize(4)
        fresh_view = shard_map.view_snapshot()
        assert view.apply_push(fresh_view) is True
        # A delayed pre-resize push arriving late must not roll routing back.
        assert view.apply_push(old_view) is False
        assert view.ring_epoch == shard_map.ring_epoch
        assert view.pushes_applied == 1

    def test_apply_push_keeps_fresher_cached_shard_epochs(self):
        shard_map = ShardMap(2, num_groups=2)
        view = CachedShardView(shard_map)
        snapshot = shard_map.view_snapshot()  # ring epoch unchanged by a move
        shard_map.move_shard("sh1", "g2")
        view.refresh()
        # Same ring epoch, but the view already knows sh1's bumped epoch; the
        # older per-shard route in the push must not win.
        assert view.apply_push(snapshot) is True
        assert view._routes["sh1"].epoch == shard_map.shards["sh1"].epoch


class TestReadRoutingPolicies:
    def _sites(self, servers):
        # two replicas per site over three sites
        return {server: ("us", "eu", "ap")[i // 2] for i, server in enumerate(servers)}

    def test_broadcast_targets_everyone(self):
        servers = [f"g1-s{i}" for i in range(1, 6)]
        assert BroadcastReads().read_targets("p1", servers, 4) == servers

    def test_nearest_prefers_local_replicas(self):
        servers = [f"g1-s{i}" for i in range(1, 7)]
        sites = self._sites(servers)
        sites["p1"] = "eu"
        policy = NearestQuorum.from_sites(sites)
        targets = policy.read_targets("p1", servers, 4)
        assert len(targets) == 4
        # Both eu replicas come first; the two remote picks fill the quorum.
        assert set(targets[:2]) == {"g1-s3", "g1-s4"}

    def test_nearest_never_under_targets(self):
        servers = [f"g1-s{i}" for i in range(1, 4)]
        policy = NearestQuorum.from_sites({s: "us" for s in servers})
        assert len(policy.read_targets("p1", servers, 3)) == 3
        assert len(policy.read_targets("p1", servers, 5)) == 3  # capped at group

    def test_spare_widens_the_pick(self):
        servers = [f"g1-s{i}" for i in range(1, 7)]
        sites = self._sites(servers)
        sites["p1"] = "us"
        policy = NearestQuorum.from_sites(sites, spare=1)
        assert len(policy.read_targets("p1", servers, 4)) == 5

    def test_origins_spread_their_remote_picks(self):
        # 12 replicas all remote to both proxies: a naive lexicographic
        # tie-break would make every proxy hammer the same quorum.
        servers = [f"g1-s{i}" for i in range(1, 13)]
        policy = NearestQuorum.from_sites({s: "x" for s in servers})
        picks = {
            origin: tuple(policy.read_targets(origin, servers, 4))
            for origin in ("p1", "p2", "p3")
        }
        assert len(set(picks.values())) > 1
        for origin, targets in picks.items():  # deterministic per origin
            assert tuple(policy.read_targets(origin, servers, 4)) == targets

    def test_rejects_negative_spare(self):
        with pytest.raises(ValueError):
            NearestQuorum(lambda a, b: 1.0, spare=-1)


class TestSimProxiedWorkloads:
    def test_proxied_workload_is_atomic_and_cheaper_replica_side(self):
        workload = generate_workload(num_clients=4, ops_per_client=12,
                                     num_keys=16, seed=11, pipeline_depth=4)
        direct = run_sim_kv_workload(workload, num_shards=4, num_groups=2)
        proxied = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=1, proxy_flush_delay=0.25,
        )
        for result in (direct, proxied):
            assert result.completed_ops == workload.total_operations()
            verdict = check_per_key_atomicity(result.histories)
            assert verdict.all_atomic, verdict.summary()
        assert proxied.num_proxies == 1
        assert proxied.proxy_stats is not None
        # Cross-client merging: the proxy's frames per op beat the K clients'
        # direct fan-out decisively.
        assert proxied.replica_frames < direct.replica_frames / 1.5
        # The proxy merged rounds from more than one client into one frame.
        assert proxied.proxy_stats.largest > proxied.batch_stats.largest or \
            proxied.proxy_stats.mean_batch_size > 1.0

    def test_per_key_atomicity_through_proxies_during_resize_with_crashes(self):
        workload = generate_workload(num_clients=4, ops_per_client=15,
                                     num_keys=16, seed=5, pipeline_depth=4)
        # push_views off: this test exercises the *bounce* path (the safety
        # net), so the proxies must discover the cutover the hard way.
        result = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2, proxy_flush_delay=0.25,
            resize_to=8, crashes_per_group=1, push_views=False,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.resize is not None and result.resize["to"] == 8
        # The proxies' cached views went stale at the cutover and recovered.
        assert result.stale_replays >= 1
        verdict = check_per_key_atomicity(result.histories)
        assert verdict.all_atomic, verdict.summary()

    def test_nearest_quorum_routing_stays_atomic_under_geo_delays(self):
        workload = generate_workload(num_clients=3, ops_per_client=10,
                                     num_keys=12, seed=7, pipeline_depth=4)
        shard_map = ShardMap(4, num_groups=1, servers_per_shard=6, max_faults=2,
                             readers=3, writers=3)
        sites = {s: ("us", "eu", "ap")[i // 2]
                 for i, s in enumerate(shard_map.all_servers)}
        for i, client in enumerate(workload.clients):
            sites[client] = ("us", "eu", "ap")[i % 3]
        for i in range(1, 4):
            sites[f"p{i}"] = ("us", "eu", "ap")[i - 1]
        result = run_sim_kv_workload(
            workload, shard_map=shard_map,
            delay_model=GeoDelay(sites, local_delay=0.5, wan_delay=40.0, seed=1),
            use_proxy=True, num_proxies=3,
            read_policy=NearestQuorum.from_sites(sites),
        )
        assert result.completed_ops == workload.total_operations()
        assert result.check().all_atomic
        # Reads were restricted: replica-side frames stay below a broadcast's.
        broadcast = run_sim_kv_workload(
            workload, shard_map=ShardMap(4, num_groups=1, servers_per_shard=6,
                                         max_faults=2, readers=3, writers=3),
            delay_model=GeoDelay(sites, local_delay=0.5, wan_delay=40.0, seed=1),
            use_proxy=True, num_proxies=3,
        )
        assert result.replica_frames < broadcast.replica_frames


class TestAsyncioProxiedWorkloads:
    def test_proxied_workload_is_atomic(self):
        workload = generate_workload(num_clients=3, ops_per_client=10,
                                     num_keys=12, seed=3, pipeline_depth=4)
        result = run_asyncio_kv_workload(
            workload, num_shards=4, num_groups=2, use_proxy=True, num_proxies=2,
        )
        assert result.completed_ops == workload.total_operations()
        verdict = check_per_key_atomicity(result.histories)
        assert verdict.all_atomic, verdict.summary()
        assert result.num_proxies == 2
        assert result.proxy_stats is not None
        assert result.replica_frames > 0

    def test_proxied_live_resize_replays_transparently(self):
        workload = generate_workload(num_clients=2, ops_per_client=12,
                                     num_keys=10, seed=9, pipeline_depth=4)
        result = run_asyncio_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=1, resize_to=8,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.resize is not None and result.resize["to"] == 8
        assert result.check().all_atomic

    def test_store_facade_through_proxy(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(2, num_groups=2))
            await cluster.start()
            await cluster.start_proxies(1)
            store = KVStore(cluster, client_id="c1", use_proxy=True)
            await store.connect()
            try:
                await store.put("user:7", "ada")
                assert await store.get("user:7") == "ada"
                assert await store.get("missing") is None
                await store.multi_put({"a": 1, "b": 2, "c": 3, "d": 4})
                assert await store.multi_get(["a", "b", "c", "d"]) == \
                    {"a": 1, "b": 2, "c": 3, "d": 4}
                verdict = store.check()
                assert verdict.all_atomic, verdict.summary()
                # One connection, no per-replica fan-out client-side: every
                # frame this store sent went to the proxy.
                assert store.frames_sent() < store.frames_total()
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_use_proxy_requires_started_proxies(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            store = KVStore(cluster, use_proxy=True)
            try:
                with pytest.raises(RuntimeError, match="no proxies"):
                    await store.connect()
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_unexpected_serve_error_surfaces_instead_of_hanging(self):
        from repro.core.errors import ProtocolError

        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            await cluster.start_proxies(1)
            store = KVStore(cluster, client_id="c1", use_proxy=True)
            await store.connect()
            try:
                # Break the proxy engine's dispatch path with an error
                # outside the retryable classes: the client must get an
                # error ack (and raise), never await a reply that can't
                # come.
                proxy = cluster.proxies["p1"]

                def boom(*args, **kwargs):
                    raise ValueError("codec exploded")

                proxy.view.resolve = boom
                with pytest.raises(ProtocolError, match="ValueError"):
                    await asyncio.wait_for(store.put("k", "v"), timeout=10.0)
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_proxy_can_be_picked_by_id(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            ids = await cluster.start_proxies(2)
            assert ids == ["p1", "p2"]
            store = KVStore(cluster, client_id="c1", use_proxy="p2")
            await store.connect()
            try:
                await store.put("k", "v")
                assert await store.get("k") == "v"
                assert store._proxy_client.proxy_id == "p2"
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())
