"""Tests for histories: well-formedness, precedence, completion."""

from __future__ import annotations

import pytest

from repro.consistency.history import History
from repro.core.operations import Event, EventKind, Operation, OpKind
from repro.core.timestamps import Tag


def op(op_id, client, kind, start, finish=None, value=None, tag=None, rtts=0):
    return Operation(
        op_id=op_id,
        client=client,
        kind=kind,
        start=start,
        finish=finish,
        value=value,
        tag=tag,
        round_trips=rtts,
    )


class TestHistoryBasics:
    def test_add_and_iterate(self):
        history = History()
        history.add(op("a", "w1", OpKind.WRITE, 0, 1))
        history.add(op("b", "r1", OpKind.READ, 2, 3))
        assert len(history) == 2
        assert [o.op_id for o in history] == ["a", "b"]

    def test_reads_and_writes(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, 1),
                op("b", "r1", OpKind.READ, 2, 3),
                op("c", "r2", OpKind.READ, 4, 5),
            ]
        )
        assert len(history.writes) == 1
        assert len(history.reads) == 2

    def test_operation_lookup(self):
        history = History.from_operations([op("a", "w1", OpKind.WRITE, 0, 1)])
        assert history.operation("a").client == "w1"
        with pytest.raises(KeyError):
            history.operation("missing")

    def test_write_for_tag(self):
        w = op("a", "w1", OpKind.WRITE, 0, 1, tag=Tag(1, "w1"))
        history = History.from_operations([w])
        assert history.write_for_tag(Tag(1, "w1")) is w
        assert history.write_for_tag(Tag(2, "w1")) is None

    def test_by_client(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, 1),
                op("b", "w1", OpKind.WRITE, 2, 3),
                op("c", "r1", OpKind.READ, 0, 1),
            ]
        )
        assert len(history.by_client("w1")) == 2

    def test_duration(self):
        history = History.from_operations(
            [op("a", "w1", OpKind.WRITE, 1, 4), op("b", "r1", OpKind.READ, 2, 9)]
        )
        assert history.duration() == 8
        assert History().duration() == 0.0


class TestWellFormedness:
    def test_sequential_per_client_is_well_formed(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, 1),
                op("b", "w1", OpKind.WRITE, 2, 3),
                op("c", "r1", OpKind.READ, 0.5, 2.5),
            ]
        )
        assert history.is_well_formed()

    def test_overlapping_same_client_not_well_formed(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, 5),
                op("b", "w1", OpKind.WRITE, 2, 3),
            ]
        )
        assert not history.is_well_formed()

    def test_pending_followed_by_new_op_not_well_formed(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, None),
                op("b", "w1", OpKind.WRITE, 2, 3),
            ]
        )
        assert not history.is_well_formed()


class TestPrecedence:
    def test_precedes_and_concurrent(self):
        a = op("a", "w1", OpKind.WRITE, 0, 1)
        b = op("b", "r1", OpKind.READ, 2, 3)
        c = op("c", "r2", OpKind.READ, 0.5, 2.5)
        history = History.from_operations([a, b, c])
        assert history.precedes(a, b)
        assert history.concurrent(a, c)
        pairs = list(history.real_time_pairs())
        assert (a, b) in pairs and (c, b) not in pairs


class TestCompletion:
    def test_completed_only_drops_pending_reads(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, None, tag=Tag(1, "w1")),
                op("b", "r1", OpKind.READ, 2, None),
                op("c", "r2", OpKind.READ, 2, 3, tag=Tag(1, "w1")),
            ]
        )
        completed = history.completed_only()
        ids = {o.op_id for o in completed}
        assert ids == {"a", "c"}  # pending write kept, pending read dropped

    def test_round_trip_counts(self):
        history = History.from_operations(
            [
                op("a", "w1", OpKind.WRITE, 0, 1, rtts=2),
                op("b", "r1", OpKind.READ, 2, 3, rtts=1),
                op("c", "r1", OpKind.READ, 4, None, rtts=1),
            ]
        )
        writes, reads = history.round_trip_counts()
        assert writes == [2] and reads == [1]


class TestFromEvents:
    def test_round_trip_through_events(self):
        events = [
            Event(EventKind.INVOCATION, OpKind.WRITE, "a", "w1", 0.0, value="x"),
            Event(EventKind.RESPONSE, OpKind.WRITE, "a", "w1", 1.0, value="x", tag=Tag(1, "w1")),
            Event(EventKind.INVOCATION, OpKind.READ, "b", "r1", 2.0),
            Event(EventKind.RESPONSE, OpKind.READ, "b", "r1", 3.0, value="x", tag=Tag(1, "w1")),
        ]
        history = History.from_events(events)
        assert len(history) == 2
        read = history.operation("b")
        assert read.value == "x" and read.finish == 3.0

    def test_response_without_invocation_rejected(self):
        events = [Event(EventKind.RESPONSE, OpKind.READ, "x", "r1", 1.0)]
        with pytest.raises(ValueError):
            History.from_events(events)
