"""Tests for the placement layer: replica groups, policies, live ShardMap."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.kvstore.placement import ReplicaGroup, RoundRobinPlacement
from repro.kvstore.sharding import ShardMap
from repro.protocols.registry import build_protocol


class TestRoundRobinPlacement:
    def test_spreads_shards_evenly(self):
        policy = RoundRobinPlacement()
        assignment = policy.place(
            [f"sh{i}" for i in range(1, 7)], ["g1", "g2", "g3"]
        )
        loads = {}
        for group_id in assignment.values():
            loads[group_id] = loads.get(group_id, 0) + 1
        assert loads == {"g1": 2, "g2": 2, "g3": 2}

    def test_rejects_no_groups(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement().place(["sh1"], [])

    def test_place_one_is_least_loaded(self):
        policy = RoundRobinPlacement()
        chosen = policy.place_one("sh9", ["g1", "g2"], {"g1": 3, "g2": 1})
        assert chosen == "g2"

    def test_place_one_breaks_ties_in_group_order(self):
        policy = RoundRobinPlacement()
        assert policy.place_one("sh9", ["g1", "g2"], {"g1": 2, "g2": 2}) == "g1"


class TestReplicaGroup:
    def test_defaults_from_protocol(self):
        protocol = build_protocol("abd-mwmr", ["a", "b", "c"], 1)
        group = ReplicaGroup("g1", protocol)
        assert group.servers == ["a", "b", "c"]
        assert group.quorum_size == 2
        assert group.max_faults == 1
        assert group.describe()["quorum"] == 2


class TestShardMapPlacement:
    def test_default_is_one_group_per_shard(self):
        shard_map = ShardMap(3)
        assert len(shard_map.groups) == 3
        homes = {spec.group.group_id for spec in shard_map.shards.values()}
        assert len(homes) == 3

    def test_shards_share_groups(self):
        shard_map = ShardMap(6, num_groups=2, servers_per_shard=3)
        assert len(shard_map.all_servers) == 6
        assert all(count == 3 for count in shard_map.shard_counts().values())
        for spec in shard_map.shards.values():
            assert spec.group is shard_map.groups[spec.group.group_id]
        assert len(shard_map.shards_on("g1")) == 3

    def test_resolution_reaches_every_shard_through_groups(self):
        shard_map = ShardMap(8, num_groups=2)
        owners = {shard_map.shard_for(f"k{i}").shard_id for i in range(400)}
        assert owners == set(shard_map.shards)

    def test_rejects_bad_group_count(self):
        with pytest.raises(ValueError):
            ShardMap(2, num_groups=0)


class TestMoveShard:
    def test_move_re_homes_and_fences(self):
        shard_map = ShardMap(4, num_groups=2)
        spec = shard_map.shards["sh1"]
        source = spec.group.group_id
        target = "g2" if source == "g1" else "g1"
        old_epoch = spec.epoch
        plan = shard_map.move_shard("sh1", target)
        assert spec.group.group_id == target
        assert spec.epoch == old_epoch + 1
        assert plan.old_group.group_id == source
        assert plan.new_group.group_id == target
        # The ring (key ownership) is untouched by a move.
        assert shard_map.ring_epoch == 1

    def test_move_rejects_unknown_ids(self):
        shard_map = ShardMap(2, num_groups=2)
        with pytest.raises(KeyError):
            shard_map.move_shard("sh99", "g1")
        with pytest.raises(KeyError):
            shard_map.move_shard("sh1", "g99")


class TestResizeMetadata:
    def test_grow_adds_fresh_shard_ids(self):
        shard_map = ShardMap(2, num_groups=2)
        plan = shard_map.resize(4)
        assert [spec.shard_id for spec in plan.added] == ["sh3", "sh4"]
        assert len(shard_map) == 4
        assert shard_map.ring_epoch == 2
        # Growth lands on the least-loaded groups, keeping the balance.
        assert all(count == 2 for count in shard_map.shard_counts().values())

    def test_grow_fences_exactly_the_donors(self):
        shard_map = ShardMap(4, num_groups=2)
        keys = [f"k{i}" for i in range(500)]
        owners_before = {k: shard_map.ring.owner_of(k) for k in keys}
        plan = shard_map.resize(5)
        for key in plan.moved_keys(keys):
            donor = owners_before[key]
            assert donor in plan.fenced
            assert shard_map.shards[donor].epoch == plan.fenced[donor]

    def test_shrink_retires_latest_shards(self):
        shard_map = ShardMap(4, num_groups=2)
        plan = shard_map.resize(2)
        assert sorted(spec.shard_id for spec in plan.removed) == ["sh3", "sh4"]
        assert sorted(shard_map.shards) == ["sh1", "sh2"]
        # Keys of the removed shards fall back to survivors.
        for key in (f"k{i}" for i in range(200)):
            assert shard_map.ring.owner_of(key) in ("sh1", "sh2")

    def test_resize_to_same_size_is_a_noop(self):
        shard_map = ShardMap(3)
        plan = shard_map.resize(3)
        assert not plan.added and not plan.removed and not plan.fenced
        assert shard_map.ring_epoch == 1

    def test_shard_ids_are_never_reused(self):
        shard_map = ShardMap(3, num_groups=1)
        shard_map.resize(1)
        plan = shard_map.resize(3)
        assert [spec.shard_id for spec in plan.added] == ["sh4", "sh5"]


class TestRingMonotonicity:
    """Hypothesis: resizing N -> N+1 moves ~1/(N+1) of keys, only to the
    added shard -- the bounded-movement guarantee live resize relies on."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=9),
        prefix=st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
            min_size=0,
            max_size=8,
        ),
    )
    def test_growth_moves_about_one_over_n_and_only_to_new_shards(self, n, prefix):
        shard_map = ShardMap(n, num_groups=1, virtual_nodes=128)
        keys = [f"{prefix}key-{i}" for i in range(300)]
        owners_before = {k: shard_map.ring.owner_of(k) for k in keys}
        plan = shard_map.resize(n + 1)
        added = {spec.shard_id for spec in plan.added}
        moved = plan.moved_keys(keys)
        # Monotonicity: a key either keeps its owner or joins the new shard.
        for key in keys:
            after = shard_map.ring.owner_of(key)
            assert after == owners_before[key] or after in added
        # Bounded movement: ~1/(N+1) of keys, never a wholesale reshuffle.
        expected = len(keys) / (n + 1)
        assert len(moved) <= 3.0 * expected
        assert plan.moved_fraction(keys) == len(moved) / len(keys)
