"""Tests for the top-level public API (``repro.quick_run``) and the examples.

The example scripts are part of the deliverable; importing and running their
``main()`` functions (with small parameters where applicable) keeps them from
rotting.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys


import repro
from repro import quick_run
from repro.core.fastness import DesignPoint

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestQuickRun:
    def test_default_run_is_atomic(self):
        result = quick_run(seed=1)
        assert result.atomicity.atomic
        assert len(result.history) > 0
        assert result.messages_sent > 0

    def test_quick_run_protocol_kwargs_forwarded(self):
        result = quick_run(
            "fast-read-mwmr", servers=4, max_faults=1, seed=2, enforce_condition=False
        )
        assert len(result.history) > 0

    def test_quick_run_candidate_protocol_flags_violations(self):
        result = quick_run("fast-write-attempt", servers=5, seed=3,
                           writes_per_writer=4, reads_per_reader=4)
        # Under a random workload violations are not guaranteed, but the
        # verdict object must always be populated either way.
        assert result.atomicity.method == "cluster"

    def test_version_exposed(self):
        assert repro.__version__
        assert "quick_run" in repro.__all__

    def test_design_point_reexported(self):
        assert repro.DesignPoint is DesignPoint

    def test_kvstore_reexported(self):
        from repro.kvstore import KVStore, ShardMap, SyncKVStore

        assert repro.KVStore is KVStore
        assert repro.ShardMap is ShardMap
        assert repro.SyncKVStore is SyncKVStore
        assert "KVStore" in repro.__all__


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "design_space_report.py",
            "impossibility_walkthrough.py",
            "geo_replicated_kv.py",
            "asyncio_cluster_latency.py",
            "byzantine_faults.py",
        }
        present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert expected <= present

    def test_quickstart_runs(self, capsys):
        module = _load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "atomicity: ATOMIC" in output
        assert "fast-read-mwmr" in output

    def test_impossibility_walkthrough_runs(self, capsys, monkeypatch):
        module = _load_example("impossibility_walkthrough")
        monkeypatch.setattr(sys, "argv", ["impossibility_walkthrough.py", "3"])
        module.main()
        output = capsys.readouterr().out
        assert "VERIFIED" in output
        assert "atomicity violated" in output

    def test_geo_replicated_kv_runs(self, capsys, monkeypatch):
        module = _load_example("geo_replicated_kv")
        monkeypatch.setattr(sys, "argv", ["geo_replicated_kv.py", "6", "10"])
        module.main()
        output = capsys.readouterr().out
        assert "fast-read-mwmr" in output
        assert "abd-mwmr" in output
        assert "shards" in output
        assert output.count("violations across keys: 0") == 2

    def test_byzantine_example_runs(self, capsys, monkeypatch):
        module = _load_example("byzantine_faults")
        monkeypatch.setattr(sys, "argv", ["byzantine_faults.py", "1"])
        module.main()
        output = capsys.readouterr().out
        assert "NOT ATOMIC" in output        # plain MW-ABD is poisoned
        assert "poisoned reads   : 0" in output  # the vouching register is not
