"""Tests for the executable W1R2 impossibility theorem and the sieve."""

from __future__ import annotations

import pytest

from repro.core.errors import ProofError
from repro.theory.crucialinfo import (
    CRUCIAL_12,
    CRUCIAL_21,
    CrucialInfoState,
    FlipEffect,
    NoEffect,
    crucial_info,
    crucial_info_vector,
)
from repro.theory.chains import build_alpha_chain
from repro.theory.executions import W1, W2
from repro.theory.fullinfo import (
    NATURAL_RULES,
    FullInfoView,
    LastWriteWinsRule,
    PessimisticOldValueRule,
    ReadRule,
)
from repro.theory.impossibility import find_critical_server, refute_all, refute_rule
from repro.theory.sieve import build_alpha_hat_chain, run_sieve
from repro.util.ids import server_ids


class TestCriticalServer:
    def test_every_rule_has_a_flip_point(self):
        servers = server_ids(4)
        for rule in NATURAL_RULES:
            index, witness, _ = find_critical_server(rule, servers)
            assert witness is None
            assert 1 <= index <= 4

    def test_rule_violating_head_is_caught(self):
        class AlwaysOne(ReadRule):
            name = "always-one"

            def decide(self, view):
                return 1

        index, witness, _ = find_critical_server(AlwaysOne(), server_ids(3))
        assert index is None
        assert witness is not None
        assert witness.kind == "forced-value"
        assert witness.execution.name == "alpha_0"

    def test_rule_violating_tail_is_caught(self):
        class AlwaysTwo(ReadRule):
            name = "always-two"

            def decide(self, view):
                return 2

        index, witness, _ = find_critical_server(AlwaysTwo(), server_ids(3))
        assert index is None
        assert witness is not None
        assert witness.execution.name == "alpha_tail"


class TestRefutation:
    @pytest.mark.parametrize("rule", NATURAL_RULES, ids=lambda r: r.name)
    @pytest.mark.parametrize("num_servers", [3, 4])
    def test_every_natural_rule_is_refuted(self, rule, num_servers):
        outcome = refute_rule(rule, num_servers=num_servers)
        assert outcome.refuted
        assert outcome.witness.kind in ("forced-value", "reader-disagreement")
        assert outcome.certificate is None or outcome.certificate.all_verified
        assert outcome.executions_evaluated > 0

    def test_refute_all(self):
        outcomes = refute_all(NATURAL_RULES, num_servers=3)
        assert len(outcomes) == len(NATURAL_RULES)
        assert all(o.refuted for o in outcomes)

    def test_witness_execution_has_disagreeing_reads(self):
        outcome = refute_rule(LastWriteWinsRule(), num_servers=3)
        witness = outcome.witness
        if witness.kind == "reader-disagreement":
            assert witness.r1_value != witness.r2_value

    def test_requires_at_least_three_servers(self):
        with pytest.raises(ProofError):
            refute_rule(LastWriteWinsRule(), num_servers=2)

    def test_summary_mentions_execution(self):
        outcome = refute_rule(PessimisticOldValueRule(), num_servers=3)
        assert outcome.witness.execution.name in outcome.summary()

    def test_rule_ignoring_views_fails_fast(self):
        class CoinFlipOnName(ReadRule):
            """Not a function of the view: decides from the reader name."""

            name = "peeks-at-reader"

            def decide(self, view: FullInfoView) -> int:
                return 1 if view.reader == "R1" else 2

        outcome = refute_rule(CoinFlipOnName(), num_servers=3)
        # Such a rule either disagrees between the readers in some execution
        # or trips the forced-value checks; either way it is refuted.
        assert outcome.refuted


class TestCrucialInfo:
    def test_crucial_info_extraction(self):
        servers = server_ids(3)
        chain = build_alpha_chain(servers)
        assert crucial_info(chain[0], "s1") == CRUCIAL_12
        assert crucial_info(chain[3], "s1") == CRUCIAL_21
        vector = crucial_info_vector(chain[1])
        assert vector == {"s1": "21", "s2": "12", "s3": "12"}

    def test_partial_crucial_info_when_write_skipped(self):
        servers = server_ids(3)
        execution = build_alpha_chain(servers)[0].skip_phase_on("s1", W2)
        assert crucial_info(execution, "s1") == "1"

    def test_flip_effect(self):
        state = CrucialInfoState.from_execution(
            build_alpha_chain(server_ids(3))[0], FlipEffect(["s3"])
        )
        assert state.initial["s3"] == CRUCIAL_12
        assert state.after_effect["s3"] == CRUCIAL_21
        assert state.after_effect["s1"] == CRUCIAL_12
        assert state.unaffected_servers() == ["s1", "s2"]

    def test_no_effect(self):
        state = CrucialInfoState.from_execution(
            build_alpha_chain(server_ids(3))[0], NoEffect()
        )
        assert state.initial == state.after_effect
        assert NoEffect().describe() == "no-effect"

    def test_flip_is_involution(self):
        assert CrucialInfoState.flip(CrucialInfoState.flip(CRUCIAL_12)) == CRUCIAL_12
        assert CrucialInfoState.flip("1") == "1"


class TestSieve:
    def test_alpha_hat_swaps_only_unaffected(self):
        servers = server_ids(5)
        chain = build_alpha_hat_chain(servers, frozenset({"s4", "s5"}))
        assert len(chain) == 4  # 3 unaffected servers -> 4 executions
        tail = chain[-1]
        assert tail.receive_order["s1"][:2] == (W2, W1)
        assert tail.receive_order["s4"][:2] == (W1, W2)

    def test_sieve_verifies_with_enough_unaffected(self):
        certificate = run_sieve(6, affected_servers=["s5", "s6"])
        assert certificate.all_verified
        assert certificate.chain_length == 5
        assert len(certificate.unaffected) == 4

    def test_sieve_fails_when_too_many_affected(self):
        certificate = run_sieve(4, affected_servers=["s3", "s4"])
        assert not certificate.all_verified
        failed = [name for name, ok, _ in certificate.checks if not ok]
        assert any("at least 3 unaffected" in name for name in failed)

    def test_sieve_with_no_effect_degenerates_to_plain_argument(self):
        certificate = run_sieve(4)
        assert certificate.affected == frozenset()
        assert certificate.all_verified

    def test_sieve_steps_record_crucial_info(self):
        certificate = run_sieve(5, affected_servers=["s5"])
        head, tail = certificate.steps[0], certificate.steps[-1]
        assert head.r1_forced_value == 2
        # The affected server's info is flipped identically at both ends.
        assert head.crucial_info_after_effect["s5"] == tail.crucial_info_after_effect["s5"]

    def test_sieve_summary(self):
        certificate = run_sieve(6, affected_servers=["s6"])
        assert "sieve over S=6" in certificate.summary()
