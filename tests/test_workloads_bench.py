"""Tests for workload generators and the benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchConfig, run_simulated_benchmark, sweep_protocols
from repro.bench.metrics import collect_metrics
from repro.bench.report import format_metrics_table, format_rows
from repro.consistency import check_atomicity
from repro.consistency.history import History
from repro.core.operations import Operation, OpKind
from repro.core.timestamps import Tag
from repro.protocols.registry import build_protocol
from repro.sim.runtime import Simulation
from repro.util.ids import client_ids, server_ids
from repro.workloads.generators import (
    apply_closed_loop,
    asymmetric_write_contention,
    bursty_contention,
    read_heavy_closed_loop,
    uniform_open_loop,
    write_pairs_then_reads,
)

WRITERS = client_ids("w", 2)
READERS = client_ids("r", 2)


class TestWorkloadGenerators:
    def test_uniform_counts(self):
        workload = uniform_open_loop(WRITERS, READERS, 3, 5, horizon=50.0, seed=1)
        assert workload.write_count == 6
        assert workload.read_count == 10

    def test_uniform_deterministic(self):
        a = uniform_open_loop(WRITERS, READERS, 3, 5, horizon=50.0, seed=1)
        b = uniform_open_loop(WRITERS, READERS, 3, 5, horizon=50.0, seed=1)
        assert [(o.client, o.at, o.action) for o in a.operations] == [
            (o.client, o.at, o.action) for o in b.operations
        ]

    def test_uniform_per_client_times_increasing(self):
        workload = uniform_open_loop(WRITERS, READERS, 5, 5, horizon=30.0, seed=2)
        per_client = {}
        for op in workload.operations:
            per_client.setdefault(op.client, []).append(op.at)
        for times in per_client.values():
            assert times == sorted(times)
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(g > 0 for g in gaps)

    def test_bursty_structure(self):
        workload = bursty_contention(WRITERS, READERS, bursts=2, burst_width=1.0,
                                     burst_gap=20.0, seed=0)
        assert workload.write_count == 4    # 2 writers x 2 bursts
        assert workload.read_count == 8     # 2 readers x 2 reads x 2 bursts

    def test_asymmetric_pattern(self):
        workload = asymmetric_write_contention(WRITERS, READERS, rounds=2,
                                               fast_writer_burst=3)
        writes = [op for op in workload.operations if op.action == "write"]
        w1_writes = [op for op in writes if op.client == "w1"]
        w2_writes = [op for op in writes if op.client == "w2"]
        assert len(w1_writes) == 6 and len(w2_writes) == 2

    def test_asymmetric_requires_writer(self):
        with pytest.raises(ValueError):
            asymmetric_write_contention([], READERS)

    def test_write_pairs_sequencing(self):
        workload = write_pairs_then_reads(WRITERS, READERS, rounds=2, overlap=False)
        assert workload.write_count == 4 and workload.read_count == 4

    def test_closed_loop_totals(self):
        workload = read_heavy_closed_loop(WRITERS, READERS, operations_per_client=4)
        assert workload.total_operations() == 16

    def test_apply_closed_loop_runs(self):
        protocol = build_protocol("abd-mwmr", server_ids(5), 1)
        simulation = Simulation(protocol)
        workload = read_heavy_closed_loop(WRITERS, READERS, operations_per_client=3)
        apply_closed_loop(simulation, workload)
        result = simulation.run()
        assert len(result.history) == 12
        assert result.history.is_well_formed()
        assert check_atomicity(result.history).atomic


class TestBenchHarness:
    def test_run_simulated_benchmark(self):
        config = BenchConfig(
            protocol_key="fast-read-mwmr", servers=7, writes_per_writer=3,
            reads_per_reader=4, seed=1,
        )
        metrics = run_simulated_benchmark(config)
        assert metrics.atomic
        assert metrics.max_read_round_trips == 1
        assert metrics.max_write_round_trips == 2
        assert metrics.operations > 0
        assert metrics.read_latency.count > 0

    def test_bench_workload_variants(self):
        for workload in ("uniform", "bursty", "asymmetric"):
            config = BenchConfig(
                protocol_key="abd-mwmr", workload=workload, writes_per_writer=2,
                reads_per_reader=3,
            )
            metrics = run_simulated_benchmark(config)
            assert metrics.operations > 0

    def test_bench_unknown_workload(self):
        config = BenchConfig(protocol_key="abd-mwmr", workload="bogus")
        with pytest.raises(ValueError):
            run_simulated_benchmark(config)

    def test_bench_with_crash(self):
        config = BenchConfig(protocol_key="abd-mwmr", crash_servers=1,
                             writes_per_writer=2, reads_per_reader=2)
        metrics = run_simulated_benchmark(config)
        assert metrics.atomic

    def test_sweep_protocols(self):
        metrics = sweep_protocols(
            ["abd-mwmr", "fast-write-attempt"], seeds=(0,), workload="asymmetric",
            writes_per_writer=4,
        )
        by_name = {m.protocol: m for m in metrics}
        assert by_name["mw-abd (W2R2)"].atomic
        assert not by_name["fast-write attempt (W1R2 candidate, not atomic)"].atomic

    def test_fast_read_vs_abd_latency_shape(self):
        # The headline latency claim: one-round-trip reads are roughly half
        # the latency of two-round-trip reads under the same delay model.
        results = sweep_protocols(
            ["fast-read-mwmr", "abd-mwmr"], seeds=(0,), servers=7,
            writes_per_writer=3, reads_per_reader=8,
        )
        fast = next(m for m in results if "fast-read" in m.protocol)
        slow = next(m for m in results if "mw-abd" in m.protocol)
        assert fast.read_latency.p50 < 0.75 * slow.read_latency.p50
        assert fast.atomic and slow.atomic


class TestMetricsAndReport:
    def _history(self):
        return History(
            [
                Operation("w", "w1", OpKind.WRITE, 0, 2, "x", Tag(1, "w1"), round_trips=2),
                Operation("r", "r1", OpKind.READ, 3, 4, "x", Tag(1, "w1"), round_trips=1),
            ]
        )

    def test_collect_metrics(self):
        history = self._history()
        verdict = check_atomicity(history)
        metrics = collect_metrics("demo", history, verdict, messages_sent=10,
                                  extra={"k": 1.0})
        assert metrics.operations == 2
        assert metrics.max_write_round_trips == 2
        assert metrics.mean_read_round_trips == 1.0
        assert metrics.as_row()["k"] == 1.0

    def test_format_rows_alignment(self):
        table = format_rows(
            [{"a": 1, "b": "xy"}, {"a": 22.5, "b": "z"}], columns=["a", "b"]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned widths

    def test_format_metrics_table(self):
        history = self._history()
        metrics = collect_metrics("demo", history, check_atomicity(history))
        text = format_metrics_table([metrics])
        assert "demo" in text and "protocol" in text
