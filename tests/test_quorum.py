"""Tests for quorum systems and their intersection lemmas."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.quorum.systems import (
    FastQuorumSystem,
    MajorityQuorumSystem,
    QuorumSystem,
    ack_sets,
    all_intersect,
    intersection_size_lower_bound,
)
from repro.util.ids import server_ids


class TestQuorumSystem:
    def test_rejects_too_few_servers(self):
        with pytest.raises(ConfigurationError):
            QuorumSystem(("s1",), 0)

    def test_rejects_bad_fault_count(self):
        with pytest.raises(ConfigurationError):
            QuorumSystem(tuple(server_ids(3)), 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            QuorumSystem(("s1", "s1", "s2"), 1)

    def test_quorum_size(self):
        qs = QuorumSystem(tuple(server_ids(5)), 2)
        assert qs.quorum_size == 3

    def test_is_quorum(self):
        qs = QuorumSystem(tuple(server_ids(5)), 1)
        assert qs.is_quorum(["s1", "s2", "s3", "s4"])
        assert not qs.is_quorum(["s1", "s2"])

    def test_is_quorum_rejects_unknown_servers(self):
        qs = QuorumSystem(tuple(server_ids(3)), 1)
        with pytest.raises(ConfigurationError):
            qs.is_quorum(["s1", "s9"])

    def test_tolerates(self):
        qs = QuorumSystem(tuple(server_ids(5)), 2)
        assert qs.tolerates(["s1", "s2"])
        assert not qs.tolerates(["s1", "s2", "s3"])

    def test_enumerate_quorums(self):
        qs = QuorumSystem(tuple(server_ids(4)), 1)
        quorums = list(qs.quorums())
        assert len(quorums) == 4  # C(4, 3)
        assert all(len(q) == 3 for q in quorums)


class TestMajority:
    def test_requires_strict_majority(self):
        with pytest.raises(ConfigurationError):
            MajorityQuorumSystem(tuple(server_ids(4)), 2)

    def test_regularity(self):
        qs = MajorityQuorumSystem(tuple(server_ids(5)), 2)
        assert qs.regular()
        assert all_intersect(qs.quorums())

    @pytest.mark.parametrize("servers,faults", [(3, 1), (5, 1), (5, 2), (7, 3)])
    def test_any_two_quorums_intersect(self, servers, faults):
        qs = MajorityQuorumSystem(tuple(server_ids(servers)), faults)
        assert qs.guaranteed_overlap() >= 1
        assert all_intersect(qs.quorums())


class TestFastQuorums:
    def test_requires_reader_bound(self):
        with pytest.raises(ConfigurationError):
            FastQuorumSystem(tuple(server_ids(4)), 1, readers=2)

    def test_valid_configuration(self):
        qs = FastQuorumSystem(tuple(server_ids(6)), 1, readers=3)
        assert qs.max_degree() == 4
        assert qs.admissible_set_size(1) == 5

    def test_lemma9_witness_survives_faults(self):
        qs = FastQuorumSystem(tuple(server_ids(7)), 1, readers=4)
        for degree in range(1, qs.max_degree() + 1):
            assert qs.witness_survives_faults(degree)

    def test_lemma10_witness_meets_later_read(self):
        qs = FastQuorumSystem(tuple(server_ids(9)), 2, readers=2)
        for degree in range(1, qs.max_degree() + 1):
            assert qs.witness_meets_later_read(degree)

    def test_lemmas_fail_when_bound_violated(self):
        # Bypass the constructor check to probe the lemma predicates directly.
        qs = FastQuorumSystem(tuple(server_ids(8)), 2, readers=1)
        object.__setattr__(qs, "readers", 2)  # now R >= S/t - 2
        degree = qs.max_degree()
        assert not qs.witness_survives_faults(degree)


class TestHelpers:
    def test_intersection_lower_bound(self):
        assert intersection_size_lower_bound(4, 4, 5) == 3
        assert intersection_size_lower_bound(2, 2, 5) == 0

    def test_ack_sets_count(self):
        assert len(list(ack_sets(server_ids(5), 4))) == 5

    def test_all_intersect_negative(self):
        assert not all_intersect([frozenset({"s1"}), frozenset({"s2"})])

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=3),
    )
    def test_quorum_overlap_formula(self, servers, faults):
        if faults >= servers:
            return
        qs = QuorumSystem(tuple(server_ids(servers)), faults)
        expected = max(0, servers - 2 * faults)
        assert qs.guaranteed_overlap() == expected
        if expected >= 1:
            assert all_intersect(qs.quorums())
