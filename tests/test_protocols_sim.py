"""Integration tests: every protocol end-to-end on the simulator.

These tests are the executable Table 1: protocols at feasible design points
must produce atomic histories under contended workloads, crash faults and
adversarial delays; the candidate protocols at infeasible points must be
caught by the checker.
"""

from __future__ import annotations

import pytest

from repro.consistency import check_atomicity
from repro.core.fastness import classify_round_trips, DesignPoint
from repro.protocols.registry import build_protocol
from repro.sim.delays import ExponentialDelay, UniformDelay
from repro.sim.runtime import Simulation
from repro.util.ids import client_ids, server_ids
from repro.workloads.generators import (
    apply_open_loop,
    asymmetric_write_contention,
    bursty_contention,
    uniform_open_loop,
    write_pairs_then_reads,
)

CORRECT_MW = ["abd-mwmr", "fast-read-mwmr"]
CORRECT_SW = ["abd-swmr", "fast-swmr", "semifast-swmr"]
CANDIDATES = ["fast-write-attempt", "fast-rw-attempt"]


def run_workload(protocol_key, workload_factory, servers=5, max_faults=1, seed=0,
                 crash=None, **protocol_kwargs):
    protocol = build_protocol(
        protocol_key, server_ids(servers), max_faults, readers=2, writers=2,
        **protocol_kwargs,
    )
    simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 2.0, seed=seed))
    writers = client_ids("w", protocol.writers)
    readers = client_ids("r", 2)
    apply_open_loop(simulation, workload_factory(writers, readers))
    if crash is not None:
        simulation.crash_server(crash[0], at=crash[1])
    result = simulation.run()
    return result, check_atomicity(result.history)


def uniform(writers, readers):
    return uniform_open_loop(writers, readers, 4, 6, horizon=120.0, seed=3)


def bursty(writers, readers):
    return bursty_contention(writers, readers, bursts=3, burst_width=2.0, burst_gap=30.0, seed=3)


def asymmetric(writers, readers):
    return asymmetric_write_contention(writers, readers, rounds=2)


class TestCorrectProtocolsStayAtomic:
    @pytest.mark.parametrize("key", CORRECT_MW + CORRECT_SW)
    @pytest.mark.parametrize("workload", [uniform, bursty, asymmetric])
    def test_atomic_under_contention(self, key, workload):
        servers = 7 if key in ("fast-read-mwmr", "fast-swmr") else 5
        result, verdict = run_workload(key, workload, servers=servers)
        assert result.history.is_well_formed()
        assert verdict.atomic, verdict.report.summary()

    @pytest.mark.parametrize("key", CORRECT_MW)
    @pytest.mark.parametrize("seed", range(4))
    def test_atomic_across_seeds(self, key, seed):
        result, verdict = run_workload(key, uniform, servers=7, seed=seed)
        assert verdict.atomic

    @pytest.mark.parametrize("key", CORRECT_MW)
    def test_atomic_with_crash(self, key):
        result, verdict = run_workload(
            key, bursty, servers=7, crash=("s7", 20.0)
        )
        assert verdict.atomic
        assert all(op.is_complete for op in result.history)

    @pytest.mark.parametrize("key", CORRECT_MW)
    def test_atomic_with_heavy_tailed_delays(self, key):
        protocol = build_protocol(key, server_ids(7), 1, readers=2, writers=2)
        simulation = Simulation(protocol, delay_model=ExponentialDelay(2.0, seed=5))
        workload = bursty_contention(
            client_ids("w", 2), client_ids("r", 2), bursts=3, burst_width=3.0,
            burst_gap=40.0, seed=5,
        )
        apply_open_loop(simulation, workload)
        result = simulation.run()
        assert check_atomicity(result.history).atomic


class TestObservedDesignPoints:
    @pytest.mark.parametrize(
        "key,expected",
        [
            ("abd-mwmr", DesignPoint.W2R2),
            ("fast-read-mwmr", DesignPoint.W2R1),
            ("fast-write-attempt", DesignPoint.W1R2),
            ("fast-rw-attempt", DesignPoint.W1R1),
        ],
    )
    def test_round_trips_match_claim(self, key, expected):
        servers = 7 if key == "fast-read-mwmr" else 5
        result, _ = run_workload(key, uniform, servers=servers)
        writes, reads = result.history.round_trip_counts()
        assert classify_round_trips(writes, reads) is expected

    def test_single_writer_points(self):
        for key, expected in [
            ("abd-swmr", DesignPoint.W1R2),
            ("fast-swmr", DesignPoint.W1R1),
        ]:
            servers = 7 if key == "fast-swmr" else 5
            result, _ = run_workload(key, uniform, servers=servers)
            writes, reads = result.history.round_trip_counts()
            assert classify_round_trips(writes, reads) is expected

    def test_semifast_reads_mostly_fast(self):
        result, verdict = run_workload("semifast-swmr", uniform, servers=5)
        _, reads = result.history.round_trip_counts()
        assert verdict.atomic
        assert min(reads) == 1  # at least some reads took the fast path


class TestCandidatesViolate:
    @pytest.mark.parametrize("key", CANDIDATES)
    def test_asymmetric_writes_expose_violation(self, key):
        result, verdict = run_workload(key, asymmetric, servers=5)
        assert not verdict.atomic
        assert verdict.report.anomalies

    def test_violation_reports_are_classified(self):
        _, verdict = run_workload("fast-write-attempt", asymmetric, servers=5)
        kinds = {a.kind.value for a in verdict.report.anomalies}
        assert kinds  # at least one concrete anomaly kind named

    @pytest.mark.parametrize("key", CANDIDATES)
    def test_candidates_fine_without_writer_asymmetry(self, key):
        # With a single writer the fast-write candidate degenerates to ABD
        # SWMR and is atomic -- matching the paper: the impossibility needs
        # W >= 2.
        protocol = build_protocol(key, server_ids(5), 1, readers=2, writers=1)
        simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.0, seed=2))
        workload = uniform_open_loop(["w1"], client_ids("r", 2), 4, 6, 100.0, seed=2)
        apply_open_loop(simulation, workload)
        result = simulation.run()
        if key == "fast-write-attempt":
            assert check_atomicity(result.history).atomic


class TestFastReadPaperScenario:
    def test_write_pairs_then_reads(self):
        # The W1/W2 then R1/R2 pattern of the proofs, against the paper's
        # correct W2R1 protocol: always atomic.
        result, verdict = run_workload("fast-read-mwmr",
                                       lambda w, r: write_pairs_then_reads(w, r, rounds=3),
                                       servers=7)
        assert verdict.atomic

    def test_fast_reads_stay_fast_under_crash(self):
        protocol = build_protocol("fast-read-mwmr", server_ids(7), 1, readers=2, writers=2)
        simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.0, seed=9))
        simulation.crash_server("s7", at=0.1)
        simulation.schedule_write("w1", "a", at=1.0)
        simulation.schedule_read("r1", at=10.0)
        simulation.schedule_read("r2", at=20.0)
        result = simulation.run()
        _, reads = result.history.round_trip_counts()
        assert reads == [1, 1]
        assert check_atomicity(result.history).atomic
