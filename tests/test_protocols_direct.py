"""Unit tests of protocol client logic through the synchronous DirectDriver."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, QuorumUnavailableError
from repro.core.operations import OpKind
from repro.core.timestamps import BOTTOM_TAG, Tag
from repro.protocols.base import DirectDriver
from repro.protocols.registry import PROTOCOLS, build_protocol, protocol_for_point
from repro.core.fastness import DesignPoint
from repro.util.ids import server_ids

SERVERS = server_ids(5)


def make_driver(protocol):
    servers = {sid: protocol.make_server(sid) for sid in protocol.servers}
    return DirectDriver(servers, protocol.max_faults)


class TestAbdMwmr:
    def setup_method(self):
        self.protocol = build_protocol("abd-mwmr", SERVERS, 1)
        self.driver = make_driver(self.protocol)

    def test_write_assigns_increasing_tags(self):
        writer1 = self.protocol.make_writer("w1")
        writer2 = self.protocol.make_writer("w2")
        first = self.driver.run_operation(writer1, writer1.write_protocol("a"), "op1")
        second = self.driver.run_operation(writer2, writer2.write_protocol("b"), "op2")
        assert first.tag == Tag(1, "w1")
        assert second.tag == Tag(2, "w2")
        assert second.tag > first.tag

    def test_read_returns_latest(self):
        writer = self.protocol.make_writer("w1")
        reader = self.protocol.make_reader("r1")
        self.driver.run_operation(writer, writer.write_protocol("a"), "op1")
        self.driver.run_operation(writer, writer.write_protocol("b"), "op2")
        outcome = self.driver.run_operation(reader, reader.read_protocol(), "op3")
        assert outcome.kind is OpKind.READ
        assert outcome.value == "b"
        assert outcome.tag == Tag(2, "w1")

    def test_read_of_initial_value(self):
        reader = self.protocol.make_reader("r1")
        outcome = self.driver.run_operation(reader, reader.read_protocol(), "op1")
        assert outcome.tag == BOTTOM_TAG
        assert outcome.value is None

    def test_writer_cannot_read_and_vice_versa(self):
        writer = self.protocol.make_writer("w1")
        reader = self.protocol.make_reader("r1")
        with pytest.raises(NotImplementedError):
            next(writer.read_protocol())
        with pytest.raises(NotImplementedError):
            next(reader.write_protocol("x"))

    def test_operations_use_two_round_trips(self):
        writer = self.protocol.make_writer("w1")
        outcome = self.driver.run_operation(writer, writer.write_protocol("a"), "op1")
        assert outcome.metadata["round_trips"] == 2

    def test_read_writes_back(self):
        # After a read, the chosen value must be on a quorum even if the
        # original write only reached part of the servers.
        writer = self.protocol.make_writer("w1")
        reader = self.protocol.make_reader("r1")
        partial = SERVERS[:4]
        self.driver.run_operation(
            writer, writer.write_protocol("a"), "op1", server_order=partial,
            respond_from=partial,
        )
        self.driver.run_operation(reader, reader.read_protocol(), "op2")
        holding = [
            sid for sid, logic in self.driver.servers.items() if logic.value == "a"
        ]
        assert len(holding) == len(SERVERS)


class TestFastReadMwmr:
    def setup_method(self):
        self.protocol = build_protocol("fast-read-mwmr", SERVERS, 1)
        self.driver = make_driver(self.protocol)

    def test_write_then_fast_read(self):
        writer = self.protocol.make_writer("w1")
        reader = self.protocol.make_reader("r1")
        write_outcome = self.driver.run_operation(writer, writer.write_protocol("a"), "op1")
        read_outcome = self.driver.run_operation(reader, reader.read_protocol(), "op2")
        assert write_outcome.metadata["round_trips"] == 2
        assert read_outcome.metadata["round_trips"] == 1
        assert read_outcome.value == "a"
        assert read_outcome.tag == Tag(1, "w1")

    def test_reader_val_queue_grows(self):
        writer = self.protocol.make_writer("w1")
        reader = self.protocol.make_reader("r1")
        self.driver.run_operation(writer, writer.write_protocol("a"), "op1")
        self.driver.run_operation(reader, reader.read_protocol(), "op2")
        assert Tag(1, "w1") in reader.val_queue

    def test_sequential_writers_get_increasing_tags(self):
        w1 = self.protocol.make_writer("w1")
        w2 = self.protocol.make_writer("w2")
        a = self.driver.run_operation(w1, w1.write_protocol("a"), "op1")
        b = self.driver.run_operation(w2, w2.write_protocol("b"), "op2")
        c = self.driver.run_operation(w1, w1.write_protocol("c"), "op3")
        assert a.tag < b.tag < c.tag

    def test_successive_reads_monotonic(self):
        writer = self.protocol.make_writer("w1")
        r1 = self.protocol.make_reader("r1")
        r2 = self.protocol.make_reader("r2")
        self.driver.run_operation(writer, writer.write_protocol("a"), "op1")
        first = self.driver.run_operation(r1, r1.read_protocol(), "op2")
        self.driver.run_operation(writer, writer.write_protocol("b"), "op3")
        second = self.driver.run_operation(r2, r2.read_protocol(), "op4")
        assert second.tag >= first.tag

    def test_condition_enforced(self):
        with pytest.raises(ConfigurationError):
            build_protocol("fast-read-mwmr", server_ids(4), 1, readers=2)

    def test_condition_can_be_disabled(self):
        protocol = build_protocol(
            "fast-read-mwmr", server_ids(4), 1, readers=2, enforce_condition=False
        )
        assert protocol.readers == 2

    def test_naive_reader_flag(self):
        protocol = build_protocol("fast-read-mwmr", SERVERS, 1, naive_reads=True)
        reader = protocol.make_reader("r1")
        assert reader.naive


class TestSingleWriterProtocols:
    def test_abd_swmr_fast_write(self):
        protocol = build_protocol("abd-swmr", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        outcome = driver.run_operation(writer, writer.write_protocol("a"), "op1")
        assert outcome.metadata["round_trips"] == 1
        assert outcome.tag == Tag(1, "w1")

    def test_abd_swmr_rejects_two_writers(self):
        # Instantiating the factory directly with two writers is an error;
        # build_protocol silently clamps single-writer protocols to one writer.
        with pytest.raises(ConfigurationError):
            PROTOCOLS["abd-swmr"].factory(SERVERS, 1, readers=2, writers=2)
        clamped = build_protocol("abd-swmr", SERVERS, 1, writers=2)
        assert clamped.writers == 1

    def test_fast_swmr_both_fast(self):
        protocol = build_protocol("fast-swmr", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        reader = protocol.make_reader("r1")
        w = driver.run_operation(writer, writer.write_protocol("a"), "op1")
        r = driver.run_operation(reader, reader.read_protocol(), "op2")
        assert w.metadata["round_trips"] == 1
        assert r.metadata["round_trips"] == 1
        assert r.value == "a"

    def test_fast_swmr_condition(self):
        with pytest.raises(ConfigurationError):
            build_protocol("fast-swmr", server_ids(4), 1, readers=2)

    def test_semifast_fast_path_when_stable(self):
        protocol = build_protocol("semifast-swmr", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        reader = protocol.make_reader("r1")
        driver.run_operation(writer, writer.write_protocol("a"), "op1")
        outcome = driver.run_operation(reader, reader.read_protocol(), "op2")
        assert outcome.metadata["fast_path"] is True
        assert outcome.metadata["round_trips"] == 1

    def test_semifast_slow_path_when_unstable(self):
        protocol = build_protocol("semifast-swmr", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        reader = protocol.make_reader("r1")
        # The write reaches only two servers (it does not complete), so the
        # reader sees a non-unanimous picture and takes the slow path.
        partial = SERVERS[:2]
        try:
            driver.run_operation(
                writer, writer.write_protocol("a"), "op1",
                server_order=partial, respond_from=partial,
            )
        except QuorumUnavailableError:
            pass
        outcome = driver.run_operation(reader, reader.read_protocol(), "op2")
        assert outcome.metadata["fast_path"] is False
        assert outcome.metadata["round_trips"] == 2
        assert outcome.value == "a"


class TestCandidateProtocols:
    def test_fast_write_attempt_uses_one_round_trip(self):
        protocol = build_protocol("fast-write-attempt", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        outcome = driver.run_operation(writer, writer.write_protocol("a"), "op1")
        assert outcome.metadata["round_trips"] == 1

    def test_fast_write_attempt_tags_can_invert(self):
        # The defect the impossibility theorem predicts: a later write by a
        # different writer can carry a smaller tag.
        protocol = build_protocol("fast-write-attempt", SERVERS, 1)
        driver = make_driver(protocol)
        w1 = protocol.make_writer("w1")
        w2 = protocol.make_writer("w2")
        driver.run_operation(w1, w1.write_protocol("a"), "op1")
        second = driver.run_operation(w1, w1.write_protocol("b"), "op2")
        third = driver.run_operation(w2, w2.write_protocol("c"), "op3")
        assert third.tag < second.tag  # real-time later, tag smaller

    def test_fast_rw_attempt_single_round_trips(self):
        protocol = build_protocol("fast-rw-attempt", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        reader = protocol.make_reader("r1")
        w = driver.run_operation(writer, writer.write_protocol("a"), "op1")
        r = driver.run_operation(reader, reader.read_protocol(), "op2")
        assert w.metadata["round_trips"] == 1 and r.metadata["round_trips"] == 1


class TestRegistry:
    def test_all_registered_protocols_instantiate(self):
        for key, spec in PROTOCOLS.items():
            if key in ("fast-read-mwmr", "fast-swmr"):
                protocol = build_protocol(key, server_ids(7), 1)
            else:
                protocol = build_protocol(key, SERVERS, 1)
            assert protocol.name
            assert protocol.describe()["servers"] in (5, 7)

    def test_protocol_for_point(self):
        assert protocol_for_point(DesignPoint.W2R2).key == "abd-mwmr"
        assert protocol_for_point(DesignPoint.W2R1).key == "fast-read-mwmr"
        assert protocol_for_point(DesignPoint.W1R1, multi_writer=False).key == "fast-swmr"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            build_protocol("nope", SERVERS, 1)

    def test_claimed_round_trips_match_design_point(self):
        for spec in PROTOCOLS.values():
            factory = spec.factory
            assert factory.write_round_trips in (1, 2)
            assert factory.read_round_trips in (1, 2)
            assert DesignPoint.from_round_trips(
                factory.write_round_trips, factory.read_round_trips
            ) is spec.design_point


class TestDirectDriverMechanics:
    def test_quorum_unavailable(self):
        protocol = build_protocol("abd-mwmr", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        with pytest.raises(QuorumUnavailableError):
            driver.run_operation(
                writer, writer.write_protocol("a"), "op1", respond_from=["s1", "s2"]
            )

    def test_server_order_controls_processing(self):
        protocol = build_protocol("abd-mwmr", SERVERS, 1)
        driver = make_driver(protocol)
        writer = protocol.make_writer("w1")
        order = list(reversed(SERVERS))
        outcome = driver.run_operation(
            writer, writer.write_protocol("a"), "op1", server_order=order
        )
        assert outcome.tag == Tag(1, "w1")
