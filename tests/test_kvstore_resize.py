"""Live rebalancing end to end: resize/move under load, on both backends.

The acceptance property of the placement refactor: a ``ShardMap.resize()``
(or ``move_shard``) fired while clients are mid-operation completes with
every per-key sub-history still atomic -- the epoch fence bounces in-flight
rounds to the new owners, and the migration preserves quorum intersection.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.kvstore import (
    AsyncKVCluster,
    KVHistoryRecorder,
    KVOp,
    KVStore,
    KVWorkload,
    ShardMap,
    SimKVCluster,
    SyncKVStore,
    check_per_key_atomicity,
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.util.rng import SeededRng


class TestSimLiveResize:
    def test_grow_under_concurrent_load_stays_atomic(self):
        # Shards-per-group > 1 end to end: 4 shards on 2 groups, growing to
        # 8 shards mid-run while 4 clients keep a pipeline of ops in flight.
        workload = generate_workload(num_clients=4, ops_per_client=25,
                                     num_keys=40, seed=13, pipeline_depth=5)
        result = run_sim_kv_workload(
            workload,
            num_shards=4,
            num_groups=2,
            resize_to=8,
            delay_model=UniformDelay(0.5, 1.5, seed=13),
        )
        assert result.completed_ops == workload.total_operations()
        assert result.resize is not None and result.resize["to"] == 8
        assert result.num_shards == 8 and result.num_groups == 2
        verdict = result.check()
        assert verdict.all_atomic, verdict.summary()

    def test_shrink_under_load_stays_atomic_and_keeps_data(self):
        workload = generate_workload(num_clients=3, ops_per_client=20,
                                     num_keys=24, seed=5, pipeline_depth=4)
        result = run_sim_kv_workload(
            workload,
            num_shards=6,
            num_groups=2,
            resize_to=2,
            delay_model=UniformDelay(0.5, 1.5, seed=5),
        )
        assert result.completed_ops == workload.total_operations()
        assert result.check().all_atomic
        assert result.num_shards == 2

    def test_resize_moves_about_one_over_n_of_live_keys(self):
        # Every key is materialized first, so the migration report's moved
        # count is the real ~1/N fraction, not an undercount.
        keys = [f"k{i}" for i in range(120)]
        ops = [KVOp("put", key, f"v-{key}") for key in keys]
        workload = KVWorkload(sequences={"c1": ops}, pipeline_depth=6)
        shard_map = ShardMap(8, num_groups=2, readers=1, writers=1)
        cluster = SimKVCluster(shard_map, ["c1"], delay_model=ConstantDelay(1.0))
        client = cluster.clients["c1"]
        for op in ops:
            client.put(op.key, op.value)
        cluster.run()
        report = cluster.resize(9)
        expected = len(keys) / 9
        assert 0 < report.keys_moved <= 3.0 * expected
        # The moved keys are still readable at their new owners.
        seen = {}
        for key in keys[:20]:
            client.get(
                key,
                on_complete=lambda o, key=key: seen.__setitem__(key, o.value),
            )
        cluster.run()
        assert seen == {k: f"v-{k}" for k in keys[:20]}
        assert check_per_key_atomicity(cluster.recorder.histories()).all_atomic

    def test_move_shard_under_load_stays_atomic(self):
        workload = generate_workload(num_clients=3, ops_per_client=18,
                                     num_keys=20, seed=21, pipeline_depth=4)
        shard_map = ShardMap(4, num_groups=2, readers=3, writers=3)
        cluster = SimKVCluster(
            shard_map, workload.clients, delay_model=ConstantDelay(1.0)
        )
        moved = {"done": False}

        def move_midway() -> None:
            if moved["done"] or cluster.recorder.completed_operations < 20:
                return
            moved["done"] = True
            spec = shard_map.shards["sh1"]
            target = "g2" if spec.group.group_id == "g1" else "g1"
            cluster.move_shard("sh1", target)

        cluster.add_completion_watcher(move_midway)
        from collections import deque

        def make_issuer(client, remaining):
            def issue(_o=None):
                if remaining:
                    op = remaining.popleft()
                    if op.kind == "put":
                        client.put(op.key, op.value, on_complete=issue)
                    else:
                        client.get(op.key, on_complete=issue)

            return issue

        for client_id in workload.clients:
            issue = make_issuer(
                cluster.clients[client_id], deque(workload.sequences[client_id])
            )
            for _ in range(workload.pipeline_depth):
                cluster.events.schedule(0.0, issue, label=f"start:{client_id}")
        cluster.run()
        assert moved["done"]
        assert cluster.recorder.completed_operations == workload.total_operations()
        assert check_per_key_atomicity(cluster.recorder.histories()).all_atomic

    def test_resize_with_crashed_replicas_stays_atomic(self):
        # One replica per group crashes (within each group's fault budget)
        # early, then the ring is resized live: quorums of S - t keep every
        # key readable and migration carries the surviving state over.
        workload = generate_workload(num_clients=3, ops_per_client=20,
                                     num_keys=24, seed=8, pipeline_depth=4)
        result = run_sim_kv_workload(
            workload,
            num_shards=4,
            num_groups=2,
            resize_to=6,
            delay_model=ConstantDelay(1.0),
            crashes_per_group=1,
            crash_horizon=10.0,
            crash_seed=8,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.check().all_atomic
        assert result.resize is not None

    def test_failure_injector_enforces_group_budgets(self):
        from repro.core.errors import ConfigurationError

        shard_map = ShardMap(4, num_groups=2)
        cluster = SimKVCluster(shard_map, ["c1"])
        injector = cluster.failure_injector()
        first = shard_map.groups["g1"].servers[0]
        second = shard_map.groups["g1"].servers[1]
        injector.schedule_crash(first, 1.0)
        with pytest.raises(ConfigurationError):
            injector.schedule_crash(second, 2.0)  # t=1 per group
        plans = injector.schedule_random_crashes(1, 5.0, SeededRng(3))
        # g1's budget is exhausted by the explicit crash; only g2 crashes.
        assert len(plans) == 1
        cluster.run()
        assert injector.crashed_servers == {first} | {p.process_id for p in plans}


class TestAsyncioLiveResize:
    def test_grow_under_concurrent_load_stays_atomic(self):
        workload = generate_workload(num_clients=3, ops_per_client=14,
                                     num_keys=18, seed=17, pipeline_depth=4)
        result = run_asyncio_kv_workload(
            workload,
            num_shards=4,
            num_groups=2,
            resize_to=8,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.resize is not None and result.resize["to"] == 8
        assert result.num_shards == 8 and result.num_groups == 2
        verdict = result.check()
        assert verdict.all_atomic, verdict.summary()

    def test_values_survive_resize_and_move(self):
        async def scenario():
            shard_map = ShardMap(4, num_groups=2)
            cluster = AsyncKVCluster(shard_map)
            await cluster.start()
            store = KVStore(cluster, client_id="c1")
            await store.connect()
            try:
                items = {f"user:{i}": f"v{i}" for i in range(30)}
                await store.multi_put(items)
                report = cluster.resize(9)
                assert report.shards_added == [f"sh{i}" for i in range(5, 10)]
                values = await store.multi_get(list(items))
                assert values == items
                spec = shard_map.shards["sh1"]
                target = "g2" if spec.group.group_id == "g1" else "g1"
                cluster.move_shard("sh1", target)
                values = await store.multi_get(list(items))
                assert values == items
                verdict = store.check()
                assert verdict.all_atomic, verdict.summary()
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_concurrent_hammer_during_resize_stays_atomic(self):
        async def scenario():
            shard_map = ShardMap(4, num_groups=2, readers=3, writers=3)
            cluster = AsyncKVCluster(shard_map)
            await cluster.start()
            base = time.monotonic()
            recorder = KVHistoryRecorder(lambda: time.monotonic() - base)
            stores = []
            try:
                for index in range(3):
                    store = KVStore(cluster, client_id=f"c{index + 1}",
                                    recorder=recorder)
                    await store.connect()
                    stores.append(store)

                async def hammer(store: KVStore, index: int) -> None:
                    for i in range(8):
                        await store.put(f"key-{i % 4}", f"v-{index}-{i}")
                        await store.get(f"key-{i % 4}")

                async def resizer() -> None:
                    await asyncio.sleep(0.01)
                    cluster.resize(10)
                    await asyncio.sleep(0.01)
                    cluster.resize(6)

                await asyncio.gather(
                    *(hammer(s, i) for i, s in enumerate(stores)), resizer()
                )
                verdict = check_per_key_atomicity(recorder.histories())
                assert verdict.all_atomic, verdict.summary()
                assert len(shard_map) == 6
            finally:
                for store in stores:
                    await store.close()
                await cluster.stop()

        asyncio.run(scenario())


class TestSyncStoreResize:
    def test_sync_facade_resizes_live(self):
        with SyncKVStore(num_shards=4, num_groups=2) as store:
            store.multi_put({f"k{i}": str(i) for i in range(12)})
            report = store.resize(8)
            assert report.shards_added
            assert store.multi_get([f"k{i}" for i in range(12)]) == {
                f"k{i}": str(i) for i in range(12)
            }
            assert store.check().all_atomic
