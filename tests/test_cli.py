"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "fast-read-mwmr"
        assert args.servers == 5 and args.faults == 1

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "nope"])

    def test_kv_defaults(self):
        args = build_parser().parse_args(["kv"])
        assert args.backend == "sim"
        assert args.shards == 4 and args.batch == 8
        assert args.protocol == "abd-mwmr"
        assert args.groups is None and args.resize_to is None
        assert args.proxies == 0

    def test_kv_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kv", "--backend", "carrier-pigeon"])

    def test_kv_resize_after_requires_resize_to(self):
        with pytest.raises(SystemExit, match="resize-to"):
            main(["kv", "--resize-after", "5"])

    def test_kv_cache_defaults(self):
        args = build_parser().parse_args(["kv"])
        assert args.read_cache == 0
        assert args.lease_ttl is None
        assert args.bounded_staleness is False

    def test_kv_read_cache_requires_proxies(self):
        with pytest.raises(SystemExit, match="read-cache requires --proxies"):
            main(["kv", "--read-cache", "32"])

    def test_kv_lease_flags_require_read_cache(self):
        with pytest.raises(SystemExit, match="require --read-cache"):
            main(["kv", "--proxies", "1", "--lease-ttl", "5"])
        with pytest.raises(SystemExit, match="require --read-cache"):
            main(["kv", "--proxies", "1", "--bounded-staleness"])


class TestCommands:
    def test_run_atomic_protocol_exit_zero(self, capsys):
        code = main(["run", "--protocol", "fast-read-mwmr", "--servers", "7",
                     "--writes", "2", "--reads", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "ATOMIC" in output
        assert "round-trips (w/r)  : 2/1" in output
        assert "staleness" in output

    def test_run_candidate_protocol_exit_nonzero_on_violation(self, capsys):
        # The asymmetric pattern is not used by the CLI's uniform workload,
        # so a violation is not guaranteed; just check the command completes
        # and reports a verdict either way.
        code = main(["run", "--protocol", "fast-write-attempt", "--writes", "3",
                     "--reads", "3", "--seed", "5"])
        output = capsys.readouterr().out
        assert code in (0, 1)
        assert "atomicity" in output

    def test_run_with_crash(self, capsys):
        code = main(["run", "--servers", "7", "--crash", "--writes", "2", "--reads", "2"])
        assert code == 0

    def test_table1(self, capsys):
        code = main(["table1", "--seeds", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "W2R1" in output and "fast-read-mwmr" in output

    def test_prove(self, capsys):
        code = main(["prove", "--servers", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "beta_0" in output or "alpha" in output

    def test_boundary(self, capsys):
        code = main(["boundary", "--max-servers", "5"])
        output = capsys.readouterr().out
        assert code == 0
        assert "violation observed" in output

    def test_latency(self, capsys):
        code = main(["latency", "--delay", "lan", "--protocols", "abd-mwmr",
                     "fast-read-mwmr"])
        output = capsys.readouterr().out
        assert code == 0
        assert "mw-abd (W2R2)" in output

    def test_kv_sim_backend(self, capsys):
        code = main(["kv", "--shards", "2", "--clients", "2", "--ops", "8",
                     "--keys", "8"])
        output = capsys.readouterr().out
        assert code == 0
        assert "backend            : sim" in output
        assert "ATOMIC" in output
        assert "batch rounds" in output

    def test_kv_asyncio_backend(self, capsys):
        code = main(["kv", "--backend", "asyncio", "--shards", "2",
                     "--clients", "2", "--ops", "6", "--keys", "6"])
        output = capsys.readouterr().out
        assert code == 0
        assert "backend            : asyncio" in output
        assert "ATOMIC" in output

    def test_kv_groups_and_live_resize(self, capsys):
        code = main(["kv", "--shards", "4", "--groups", "2", "--clients", "2",
                     "--ops", "10", "--keys", "10", "--resize-to", "6"])
        output = capsys.readouterr().out
        assert code == 0
        assert "4 shards on 2 groups" in output
        assert "live resize        : -> 6 shards" in output
        assert "ATOMIC" in output

    def test_kv_through_proxies(self, capsys):
        code = main(["kv", "--shards", "4", "--groups", "2", "--clients", "4",
                     "--ops", "8", "--keys", "10", "--proxies", "2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "proxy tier         : 2 proxies" in output
        assert "served by replicas" in output
        assert "ATOMIC" in output

    def test_kv_direct_omits_proxy_line(self, capsys):
        code = main(["kv", "--shards", "2", "--clients", "2", "--ops", "6",
                     "--keys", "6"])
        output = capsys.readouterr().out
        assert code == 0
        assert "proxy tier" not in output
        assert "read cache" not in output
        assert "frames             :" in output

    def test_kv_read_cache_reports_hits_and_invalidations(self, capsys):
        code = main(["kv", "--shards", "4", "--groups", "2", "--clients", "4",
                     "--ops", "12", "--keys", "6", "--proxies", "1",
                     "--read-cache", "64", "--workload", "zipf:1.2",
                     "--seed", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "read cache         : " in output
        assert "hit rate" in output
        assert "lease expiries" in output
        # The resilience line separates migration bounces from cache churn.
        assert "drain bounces" in output
        assert "cache invalidations" in output
        assert "ATOMIC" in output

    def test_kv_without_cache_still_reports_drain_bounces(self, capsys):
        code = main(["kv", "--shards", "2", "--clients", "2", "--ops", "6",
                     "--keys", "6"])
        output = capsys.readouterr().out
        assert code == 0
        assert "drain bounces" in output
        assert "0 cache invalidations" in output

    def test_kv_seed_reproduces_a_sim_run_exactly(self, capsys):
        args = ["kv", "--shards", "2", "--clients", "2", "--ops", "8",
                "--keys", "8", "--seed", "11"]

        def stable(output: str) -> str:
            # Everything the run prints is derived from the seeded workload
            # and the deterministic virtual clock.
            return "\n".join(line for line in output.splitlines()
                             if "duration" not in line or "virtual" in line)

        assert main(args) == 0
        first = stable(capsys.readouterr().out)
        assert main(args) == 0
        second = stable(capsys.readouterr().out)
        assert first == second
        assert main(["kv", "--shards", "2", "--clients", "2", "--ops", "8",
                     "--keys", "8", "--seed", "12"]) == 0
        other = stable(capsys.readouterr().out)
        assert other != first  # a different seed is a different workload

    def test_kv_seed_drives_crash_injection_reproducibly(self, capsys):
        args = ["kv", "--shards", "4", "--groups", "2", "--clients", "3",
                "--ops", "10", "--keys", "12", "--crashes", "1", "--seed", "3"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "ATOMIC" in first

    def test_kv_crashes_require_sim_backend(self):
        with pytest.raises(SystemExit, match="sim backend"):
            main(["kv", "--backend", "asyncio", "--crashes", "1"])

    def test_kv_resilience_line_on_both_backends(self, capsys):
        # The replay/failover/bounce counters print on every run (zeroes
        # included) -- on asyncio too, where they used to be invisible.
        assert main(["kv", "--shards", "2", "--clients", "2", "--ops", "6",
                     "--keys", "6"]) == 0
        sim_output = capsys.readouterr().out
        assert main(["kv", "--backend", "asyncio", "--shards", "2",
                     "--clients", "2", "--ops", "6", "--keys", "6"]) == 0
        net_output = capsys.readouterr().out
        for output in (sim_output, net_output):
            assert "resilience         : " in output
            assert "stale replays" in output
            assert "proxy failovers" in output
            assert "replica bounces" in output
            assert "op latency         : p50" in output

    def test_kv_trace_dump_reconstructs_cross_tier_spans(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["kv", "--shards", "4", "--groups", "2", "--clients", "2",
                     "--ops", "8", "--keys", "8", "--proxies", "2",
                     "--trace-dump", str(trace_path),
                     "--metrics-dump", str(metrics_path)]) == 0
        output = capsys.readouterr().out
        assert "trace dump         : " in output
        assert "metrics dump       : " in output

        def tiers_of(node, acc):
            acc.add(node["tier"])
            for child in node["children"]:
                tiers_of(child, acc)
            return acc

        data = json.loads(trace_path.read_text(encoding="utf-8"))
        assert data["traces"], "trace dump carries no span trees"
        full = [tree for tree in data["traces"]
                if tiers_of(tree["root"], set()) ==
                {"client", "proxy", "replica"}]
        assert full, "no op's span tree crosses all three tiers"

        from repro.observe import validate_metrics_snapshot

        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
        validate_metrics_snapshot(
            metrics, require_tiers=("client", "proxy", "replica")
        )
