"""Tests for the proxy read cache and its server-assisted leases.

Three layers of scrutiny:

* **Unit** -- scripted runs on the pure in-memory fabric pin the cache
  state machine: hits serve locally, concurrent readers share one fill,
  writes behind held leases defer until every holder acks the
  invalidation, lease expiry evicts on both sides, bounded-staleness mode
  serves (and then drops) expired entries, and the LRU bound holds.
* **Simulation** -- full zipf workloads check the headline perf claim
  (hot-key reads cut replica read sub-ops several-fold) and that
  atomicity survives the cache under writes, proxy kills, and concurrent
  shard drains; bounded-staleness runs are checked against the staleness
  meter's time-lag bound.
* **Asyncio** -- a proxy crash while it holds leases must not wedge
  writers: server-side lease timers expire the dead holder and release
  the deferred write acks within the lease TTL.
"""

from __future__ import annotations

import asyncio
import heapq
import time

from test_kvstore_engine import MemoryFabric, build_memory_stack, run_script

from repro.consistency import measure_staleness
from repro.core.operations import OpKind
from repro.kvstore import (
    AsyncKVCluster,
    KVStore,
    ShardMap,
    check_per_key_atomicity,
    generate_workload,
    run_sim_kv_workload,
)
from repro.kvstore.engine import (
    SIM_RETRY_POLICY,
    CachedShardView,
    ClientSessionEngine,
    GroupServerEngine,
    ProxyEngine,
    SendFrame,
)
from repro.core.timestamps import Tag
from repro.messages import (
    BATCH_ACK_KIND,
    LEASE_GRANT_KIND,
    LEASE_INVALIDATE_KIND,
    LEASE_RELEASE_KIND,
    Message,
    SubRequest,
    make_batch,
    make_lease_grant,
    make_lease_release,
    unpack_batch_ack,
    unpack_lease_grant,
)
from repro.protocols.codec import encode_tagged


def run_until(fabric: MemoryFabric, deadline: float) -> None:
    """Drain the fabric's event heap up to ``deadline`` (exclusive).

    Lease and stale-entry timers fire hundreds of fabric units after a
    short script finishes; stepping the clock part-way lets a test observe
    the cache *while* leases are live, which ``MemoryFabric.run`` (run to
    quiescence) cannot.
    """
    while fabric._heap and fabric._heap[0][0] < deadline:
        fabric.now, _, action = heapq.heappop(fabric._heap)
        action()


def issue(fabric, client, kind, key, value, sink):
    """Fire one op and record its outcome value under the client's id."""
    op_id, effects = client.invoke(kind, key, value)
    fabric.callbacks[op_id] = lambda outcome: sink.setdefault(
        client.client_id, outcome.value
    )
    fabric.execute(client.client_id, effects)


class TestCacheUnit:
    def test_repeat_read_is_served_from_cache(self):
        _, fabric, client, proxy, recorder = build_memory_stack(
            use_proxy=True, read_cache=8
        )
        outcomes = run_script(fabric, client, [
            (OpKind.WRITE, "k", "v1"),
            (OpKind.READ, "k", None),
            (OpKind.READ, "k", None),
        ])
        assert [o.value for o in outcomes] == ["v1", "v1", "v1"]
        assert proxy.cache_misses == 1
        assert proxy.cache_hits == 1
        # The miss paid one full read round (2 round trips x 3 replicas in
        # the default map); the hit paid nothing.
        assert proxy.read_subs_sent == 6
        assert check_per_key_atomicity(recorder.histories()).all_atomic

    def test_concurrent_readers_share_one_fill(self):
        _, fabric, client, proxy, recorder = build_memory_stack(
            use_proxy=True, read_cache=8, num_clients=2
        )
        run_script(fabric, client, [(OpKind.WRITE, "k", "v0")])
        other = fabric._engines["c2"]
        seen = {}
        issue(fabric, client, OpKind.READ, "k", None, seen)
        issue(fabric, other, OpKind.READ, "k", None, seen)
        subs_before = proxy.read_subs_sent
        fabric.run()
        assert seen == {"c1": "v0", "c2": "v0"}
        # Single-flight: the second read joined the first's fill instead of
        # starting its own -- at most one read round's worth of sub-ops.
        one_round = 2 * 3  # read_round_trips x replicas in the default map
        assert proxy.read_subs_sent - subs_before <= one_round
        assert check_per_key_atomicity(recorder.histories()).all_atomic

    def test_write_invalidates_cached_entry(self):
        _, fabric, client, proxy, recorder = build_memory_stack(
            use_proxy=True, read_cache=8
        )
        outcomes = run_script(fabric, client, [
            (OpKind.WRITE, "k", "v1"),
            (OpKind.READ, "k", None),
            (OpKind.WRITE, "k", "v2"),
            (OpKind.READ, "k", None),
        ])
        assert [o.value for o in outcomes] == ["v1", "v1", "v2", "v2"]
        assert proxy.cache_invalidations >= 1
        assert proxy.cache_misses == 2  # the post-write read refilled
        assert check_per_key_atomicity(recorder.histories()).all_atomic

    def test_direct_writer_defers_until_invalidation(self):
        shard_map, fabric, client, proxy, recorder = build_memory_stack(
            use_proxy=True, read_cache=8
        )
        # A second client that talks to the replicas directly, bypassing
        # the proxy -- the path that *must* observe the leases.
        direct = ClientSessionEngine(
            "d1", shard_map, recorder, policy=SIM_RETRY_POLICY
        )
        fabric.register("d1", direct)
        seen = {}
        issue(fabric, client, OpKind.WRITE, "k", "v1", seen)
        run_until(fabric, 50.0)
        issue(fabric, client, OpKind.READ, "k", None, seen)
        run_until(fabric, 100.0)
        servers = [
            fabric._engines[sid]
            for sid in shard_map.groups["g1"].servers
        ]
        assert any(s.lease_holders("k") for s in servers)
        issue(fabric, direct, OpKind.WRITE, "k", "v2", seen)
        run_until(fabric, 200.0)
        # The write completed -- but only after the replicas chased the
        # proxy's lease with invalidations and the proxy dropped its entry.
        assert seen["d1"] == "v2"
        assert sum(s.write_deferrals for s in servers) >= 1
        assert proxy.cache_invalidations >= 1
        assert not any(s.lease_holders("k") for s in servers)
        fabric.run()
        assert check_per_key_atomicity(recorder.histories()).all_atomic

    def test_lease_expiry_evicts_and_releases(self):
        shard_map, fabric, client, proxy, _ = build_memory_stack(
            use_proxy=True, read_cache=8, lease_ttl=40.0
        )
        seen = {}
        issue(fabric, client, OpKind.WRITE, "k", "v1", seen)
        run_until(fabric, 10.0)
        issue(fabric, client, OpKind.READ, "k", None, seen)
        run_until(fabric, 20.0)
        assert proxy._cache is not None and proxy._cache.peek("k") is not None
        # The proxy self-expires at ttl/2 past the fill; give the release
        # frames a hop to reach the replicas.
        run_until(fabric, 100.0)
        assert proxy.leases_expired >= 1
        assert proxy._cache.peek("k") is None
        servers = [
            fabric._engines[sid] for sid in shard_map.groups["g1"].servers
        ]
        assert not any(s.lease_holders("k") for s in servers)

    def test_bounded_staleness_serves_then_drops_expired_entry(self):
        shard_map, fabric, client, proxy, recorder = build_memory_stack(
            use_proxy=True, read_cache=8, lease_ttl=100.0,
            bounded_staleness=True,
        )
        direct = ClientSessionEngine(
            "d1", shard_map, recorder, policy=SIM_RETRY_POLICY
        )
        fabric.register("d1", direct)
        seen = {}
        issue(fabric, client, OpKind.WRITE, "k", "v1", seen)
        run_until(fabric, 10.0)
        issue(fabric, client, OpKind.READ, "k", None, seen)
        run_until(fabric, 20.0)
        fill_hits = proxy.cache_hits
        # Step past the proxy-side expiry (ttl/2 after the fill): in
        # bounded mode the entry goes stale instead of being evicted, and
        # the leases are released -- so a direct write sails through...
        run_until(fabric, 80.0)
        issue(fabric, direct, OpKind.WRITE, "k", "v2", seen)
        run_until(fabric, 90.0)
        assert seen["d1"] == "v2"
        # ...and a proxied read in the stale window still answers from the
        # (now old) entry: bounded staleness trades freshness for latency.
        stale_seen = {}
        issue(fabric, client, OpKind.READ, "k", None, stale_seen)
        run_until(fabric, 95.0)
        assert stale_seen["c1"] == "v1"
        assert proxy.cache_hits == fill_hits + 1
        # At the full TTL the stale grace ends and the entry is dropped.
        fabric.run()
        assert proxy._cache.peek("k") is None
        # The stale read is exactly what the staleness meter must flag --
        # one version behind, but never older than the lease TTL.
        report = measure_staleness(recorder.histories()["k"])
        assert report.max_version_lag >= 1
        assert report.max_time_lag is not None

    def test_lru_bound_holds_under_more_keys_than_slots(self):
        _, fabric, client, proxy, _ = build_memory_stack(
            use_proxy=True, read_cache=2
        )
        seen = {}
        for index, key in enumerate(["a", "b", "c"]):
            issue(fabric, client, OpKind.WRITE, key, f"v{index}", seen)
            run_until(fabric, fabric.now + 30.0)
            issue(fabric, client, OpKind.READ, key, None, seen)
            run_until(fabric, fabric.now + 30.0)
        assert len(proxy._cache) <= 2
        assert proxy._cache.peek("a") is None  # least recently used, evicted


def lease_server(lease_ttl=500.0):
    """One GroupServerEngine hosting the default map's single shard."""
    shard_map = ShardMap(1, num_groups=1)
    group = shard_map.groups["g1"]
    spec = shard_map.shards_on("g1")[0]
    sid = group.servers[0]
    engine = GroupServerEngine(
        sid, group.protocol, {spec.shard_id: spec.epoch}, lease_ttl=lease_ttl
    )
    return engine, sid, spec.shard_id, spec.epoch


def lease_sub(sender, sid, shard, epoch, kind, key, payload, op_id, rt,
              nonce=None):
    return SubRequest(
        key=key,
        message=Message(sender=sender, receiver=sid, kind=kind,
                        payload=payload, op_id=op_id, round_trip=rt),
        shard=shard, epoch=epoch, lease=nonce,
    )


def sent(effects, kind):
    return [e for e in effects
            if isinstance(e, SendFrame) and e.frame.kind == kind]


class TestLeaseProtocolServer:
    """Direct frame-level pins on the server half of the lease protocol."""

    def test_grant_echoes_the_fill_nonce(self):
        engine, sid, shard, epoch = lease_server()
        effects = engine.on_frame(make_batch("p1", sid, [
            lease_sub("c1", sid, shard, epoch, "query", "k", {}, "r1", 1,
                      nonce="r1/7"),
        ]))
        grants = sent(effects, LEASE_GRANT_KIND)
        assert len(grants) == 1 and grants[0].destination == "p1"
        payload = unpack_lease_grant(grants[0].frame)
        assert payload["keys"] == ["k"]
        assert payload["nonces"] == ["r1/7"]

    def test_fill_writeback_exempt_from_own_lease_only(self):
        engine, sid, shard, epoch = lease_server()
        engine.on_frame(make_batch("p1", sid, [
            lease_sub("c1", sid, shard, epoch, "query", "k", {}, "r1", 1,
                      nonce="r1/1"),
        ]))
        assert engine.lease_holders("k") == {"p1"}
        # The sender being the sole holder, its writeback sails through.
        effects = engine.on_frame(make_batch("p1", sid, [
            lease_sub("c1", sid, shard, epoch, "update", "k",
                      encode_tagged(Tag(1, "c1"), "v1"), "r1", 2,
                      nonce="r1/1"),
        ]))
        assert engine.write_deferrals == 0
        assert len(sent(effects, BATCH_ACK_KIND)) == 1

    def test_fill_writeback_defers_against_other_holders(self):
        engine, sid, shard, epoch = lease_server()
        # p2 caches the key first: p2 is a lease holder here.
        engine.on_frame(make_batch("p2", sid, [
            lease_sub("c2", sid, shard, epoch, "query", "k", {}, "r2", 1,
                      nonce="r2/1"),
        ]))
        assert engine.lease_holders("k") == {"p2"}
        # p1's lease-marked writeback must NOT slip past p2's lease: while
        # p2's granted entry stands, completing this write's read would let
        # two cache-served reads invert in real time.
        effects = engine.on_frame(make_batch("p1", sid, [
            lease_sub("c1", sid, shard, epoch, "update", "k",
                      encode_tagged(Tag(2, "c1"), "v2"), "w1", 2,
                      nonce="w1/1"),
        ]))
        assert engine.write_deferrals == 1
        assert engine.deferred_subs == 1
        assert not sent(effects, BATCH_ACK_KIND)
        chases = sent(effects, LEASE_INVALIDATE_KIND)
        assert [c.destination for c in chases] == ["p2"]
        # p2 releasing unblocks the writeback: it applies and acks to p1.
        effects = engine.on_frame(make_lease_release("p2", sid, ["k"]))
        acks = sent(effects, BATCH_ACK_KIND)
        assert len(acks) == 1 and acks[0].destination == "p1"
        assert engine.deferred_subs == 0

    def test_deferral_acks_served_subs_immediately(self):
        engine, sid, shard, epoch = lease_server()
        engine.on_frame(make_batch("p2", sid, [
            lease_sub("c2", sid, shard, epoch, "query", "k", {}, "r2", 1,
                      nonce="r2/1"),
        ]))
        # One frame carrying an innocent read of "j" and a write against
        # the leased "k": the read's reply must not wait out k's lease.
        effects = engine.on_frame(make_batch("p1", sid, [
            lease_sub("c1", sid, shard, epoch, "query", "j", {}, "r3", 1),
            lease_sub("c3", sid, shard, epoch, "update", "k",
                      encode_tagged(Tag(3, "c3"), "v3"), "w2", 2),
        ]))
        acks = sent(effects, BATCH_ACK_KIND)
        assert len(acks) == 1
        assert [key for key, _ in unpack_batch_ack(acks[0].frame)] == ["j"]
        # The deferred slot follows in its own ack once the holder clears.
        effects = engine.on_frame(make_lease_release("p2", sid, ["k"]))
        acks = sent(effects, BATCH_ACK_KIND)
        assert len(acks) == 1
        assert [key for key, _ in unpack_batch_ack(acks[0].frame)] == ["k"]


class TestGrantAttribution:
    def test_stale_nonce_grant_is_dropped_not_credited(self):
        _, fabric, client, proxy, _ = build_memory_stack(
            use_proxy=True, read_cache=8
        )
        seen = {}
        issue(fabric, client, OpKind.WRITE, "k", "v1", seen)
        run_until(fabric, 50.0)
        issue(fabric, client, OpKind.READ, "k", None, seen)
        run_until(fabric, 100.0)
        entry = proxy._cache.peek("k")
        assert entry is not None and entry.nonce
        server = entry.route.servers[0]
        entry.grants.discard(server)
        # A grant for a *previous* fill of the key (wrong nonce) is neither
        # credited nor answered with a release -- the predecessor entry's
        # own eviction release retires that lease, and releasing again here
        # could clear the live fill's fresh lease at the replica.
        effects = proxy.on_frame(
            make_lease_grant(server, "p1", ["k"], 100.0, ["ghost/0"])
        )
        assert server not in entry.grants
        assert not [e for e in effects if isinstance(e, SendFrame)]
        # The same grant with the live entry's nonce is credited.
        effects = proxy.on_frame(
            make_lease_grant(server, "p1", ["k"], 100.0, [entry.nonce])
        )
        assert server in entry.grants
        # A grant for a key with no entry at all hands the lease back.
        effects = proxy.on_frame(
            make_lease_grant(server, "p1", ["zzz"], 100.0, ["ghost/1"])
        )
        releases = sent(effects, LEASE_RELEASE_KIND)
        assert len(releases) == 1 and releases[0].destination == server

    def test_two_proxies_filling_one_key_stay_atomic(self):
        shard_map, fabric, client, proxy, recorder = build_memory_stack(
            use_proxy=True, read_cache=8
        )
        # A second proxy with its own client: its fill's writeback races
        # p1's granted entry and must defer behind p1's lease.
        proxy2 = ProxyEngine(
            "p2", CachedShardView(shard_map), policy=SIM_RETRY_POLICY,
            read_cache=8, lease_ttl=1000.0, read_round_trips=2,
        )
        fabric.register("p2", proxy2)
        client2 = ClientSessionEngine(
            "c2", shard_map, recorder, policy=SIM_RETRY_POLICY,
            proxy_candidates=["p2"],
        )
        fabric.register("c2", client2)
        fabric.execute("c2", client2.on_connected("p2"))
        seen = {}
        issue(fabric, client, OpKind.WRITE, "k", "v1", seen)
        run_until(fabric, 50.0)
        issue(fabric, client, OpKind.READ, "k", None, seen)
        run_until(fabric, 100.0)
        assert proxy._cache.peek("k") is not None
        issue(fabric, client2, OpKind.READ, "k", None, seen)
        fabric.run()
        assert seen["c1"] == "v1" and seen["c2"] == "v1"
        # p2's fill writeback was deferred against p1's standing lease and
        # the invalidation chase tore both cached entries down.
        servers = [
            fabric._engines[sid] for sid in shard_map.groups["g1"].servers
        ]
        assert sum(s.write_deferrals for s in servers) >= 1
        assert not any(s.lease_holders("k") for s in servers)
        assert check_per_key_atomicity(recorder.histories()).all_atomic


class TestCacheSim:
    def test_zipf_hot_reads_cut_replica_read_subs(self):
        workload = generate_workload(
            num_clients=8, ops_per_client=120, num_keys=32,
            read_fraction=0.9, key_skew=1.2, seed=11,
        )
        shape = dict(
            num_shards=4, num_groups=2, use_proxy=True, num_proxies=1,
        )
        cold = run_sim_kv_workload(workload, **shape)
        warm = run_sim_kv_workload(
            workload, read_cache=128, lease_ttl=480.0, **shape
        )
        assert cold.check().all_atomic and warm.check().all_atomic
        assert warm.cache is not None and warm.cache["hits"] > 0
        ratio = cold.read_subs_per_op() / warm.read_subs_per_op()
        assert ratio >= 3.0, (
            f"cached reads only cut replica read sub-ops by {ratio:.2f}x "
            f"(hit rate {warm.cache_hit_rate():.1%})"
        )

    def test_cache_stays_atomic_under_kill_and_drain(self):
        workload = generate_workload(
            num_clients=6, ops_per_client=60, num_keys=24,
            read_fraction=0.7, key_skew=1.1, seed=7,
        )
        result = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2, use_proxy=True,
            num_proxies=2, read_cache=64, lease_ttl=480.0,
            kill_proxy_after_ops=80, resize_to=6,
        )
        assert result.check().all_atomic
        assert result.completed_ops == 6 * 60
        assert result.cache is not None
        assert result.cache["invalidations"] >= 0

    def test_bounded_staleness_time_lag_stays_under_ttl(self):
        lease_ttl = 60.0
        workload = generate_workload(
            num_clients=6, ops_per_client=80, num_keys=8,
            read_fraction=0.8, key_skew=1.0, seed=3,
        )
        result = run_sim_kv_workload(
            workload, num_shards=2, num_groups=1, use_proxy=True,
            num_proxies=1, read_cache=64, lease_ttl=lease_ttl,
            bounded_staleness=True,
        )
        assert result.completed_ops == 6 * 80
        lags = []
        for history in result.histories.values():
            report = measure_staleness(history)
            if report.max_time_lag is not None:
                lags.append(report.max_time_lag)
        # Stale serving ends at the lease TTL; no read may return a value
        # older than that, whatever the interleaving.
        assert all(lag <= lease_ttl for lag in lags)


class TestLeaseCrashAsyncio:
    def test_proxy_crash_unblocks_writers_within_lease_ttl(self):
        lease_ttl = 0.5

        async def scenario():
            shard_map = ShardMap(1, num_groups=1, readers=2, writers=2)
            cluster = AsyncKVCluster(shard_map, lease_ttl=lease_ttl)
            await cluster.start()
            await cluster.start_proxies(1, read_cache=8)
            proxy_id = next(iter(cluster.proxies))
            reader = KVStore(cluster, client_id="c1", use_proxy=proxy_id)
            await reader.connect()
            await reader.put("k", "v1")
            assert await reader.get("k") == "v1"
            logics = list(cluster.server_logics.values())
            assert any(l.lease_holders("k") for l in logics)
            # Kill the proxy while it holds leases on "k".  Nothing will
            # ever ack an invalidation for those leases; only the replicas'
            # own lease timers can clear them.
            await cluster.kill_proxy(proxy_id)
            writer = KVStore(cluster, client_id="c2")
            await writer.connect()
            start = time.monotonic()
            outcome = await writer.put("k", "v2")
            elapsed = time.monotonic() - start
            assert outcome.value == "v2"
            # The write was deferred behind the dead proxy's leases and
            # released by server-side expiry -- well before the proxy
            # round-timeout machinery would have given up.
            assert elapsed < lease_ttl + 1.5
            assert sum(l.write_deferrals for l in logics) >= 1
            assert sum(l.leases_expired for l in logics) >= 1
            assert not any(l.lease_holders("k") for l in logics)
            assert await writer.get("k") == "v2"
            await writer.close()
            await reader.close()
            await cluster.stop()

        asyncio.run(scenario())
