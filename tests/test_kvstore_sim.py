"""Tests for the kv store on the discrete-event simulator backend."""

from __future__ import annotations

import pytest

from repro.kvstore import (
    KVOp,
    KVWorkload,
    ShardMap,
    SimKVCluster,
    generate_workload,
    run_sim_kv_workload,
)
from repro.sim.delays import ConstantDelay, UniformDelay


class TestWorkloadGeneration:
    def test_shapes(self):
        workload = generate_workload(num_clients=3, ops_per_client=10, num_keys=8, seed=1)
        assert workload.clients == ["c1", "c2", "c3"]
        assert workload.total_operations() == 30
        assert workload.keys <= {f"k{i}" for i in range(1, 9)}

    def test_first_op_per_client_is_a_put(self):
        workload = generate_workload(num_clients=2, ops_per_client=5, num_keys=4,
                                     read_fraction=1.0, seed=3)
        for ops in workload.sequences.values():
            assert ops[0].kind == "put"

    def test_kvop_validation(self):
        with pytest.raises(ValueError):
            KVOp("put", "k1")
        with pytest.raises(ValueError):
            KVOp("delete", "k1")
        assert KVOp("get", "k1").value is None

    def test_deterministic_for_seed(self):
        a = generate_workload(seed=9)
        b = generate_workload(seed=9)
        assert a.sequences == b.sequences


class TestSimBackend:
    def test_run_completes_and_is_atomic_per_key(self):
        workload = generate_workload(num_clients=3, ops_per_client=12, num_keys=10,
                                     seed=2, pipeline_depth=4)
        result = run_sim_kv_workload(workload, num_shards=2, max_batch=8)
        assert result.backend == "sim"
        assert result.completed_ops == workload.total_operations()
        verdict = result.check()
        assert verdict.all_atomic, verdict.summary()
        assert set(result.histories) == workload.keys

    def test_reads_return_latest_written_value(self):
        # One client, one key, sequential ops: the read must see the put.
        workload = KVWorkload(
            sequences={"c1": [KVOp("put", "k1", "v0"), KVOp("put", "k1", "v1"),
                              KVOp("get", "k1")]},
            pipeline_depth=1,
        )
        result = run_sim_kv_workload(workload, num_shards=2)
        history = result.histories["k1"]
        read = history.reads[-1]
        assert read.value == "v1"

    def test_per_key_serialization_same_client(self):
        # Pipelined ops on the SAME key by one client must stay sequential,
        # giving a well-formed per-key history.
        ops = [KVOp("put", "hot", f"v{i}") for i in range(5)] + [KVOp("get", "hot")]
        workload = KVWorkload(sequences={"c1": ops}, pipeline_depth=6)
        result = run_sim_kv_workload(workload, num_shards=1)
        history = result.histories["hot"]
        assert history.is_well_formed()
        assert result.check().all_atomic

    def test_batching_reduces_messages(self):
        workload = generate_workload(num_clients=4, ops_per_client=15, num_keys=12,
                                     seed=5, pipeline_depth=6)
        unbatched = run_sim_kv_workload(workload, num_shards=1, max_batch=1)
        batched = run_sim_kv_workload(workload, num_shards=1, max_batch=8)
        assert batched.messages_sent < unbatched.messages_sent
        assert batched.batch_stats.mean_batch_size > 1.0
        assert batched.check().all_atomic and unbatched.check().all_atomic

    def test_throughput_rises_with_shards_under_load(self):
        workload = generate_workload(num_clients=5, ops_per_client=20, num_keys=32,
                                     seed=7, pipeline_depth=5)
        few = run_sim_kv_workload(
            workload, num_shards=1, delay_model=ConstantDelay(1.0),
            server_overhead=0.3, server_per_op=0.3,
        )
        many = run_sim_kv_workload(
            workload, num_shards=4, delay_model=ConstantDelay(1.0),
            server_overhead=0.3, server_per_op=0.3,
        )
        assert many.throughput() > few.throughput()
        assert many.check().all_atomic and few.check().all_atomic

    def test_fast_read_protocol_on_shards(self):
        workload = generate_workload(num_clients=2, ops_per_client=10, num_keys=6,
                                     seed=11, pipeline_depth=3)
        result = run_sim_kv_workload(
            workload,
            num_shards=2,
            protocol_key="fast-read-mwmr",
            servers_per_shard=5,
            delay_model=UniformDelay(0.5, 1.5, seed=11),
        )
        assert result.check().all_atomic
        # Fast reads: every read finishes in one round-trip.
        for history in result.histories.values():
            for op in history.reads:
                assert op.round_trips == 1

    def test_run_result_row_and_stats(self):
        workload = generate_workload(num_clients=2, ops_per_client=6, num_keys=4, seed=3)
        result = run_sim_kv_workload(workload, num_shards=2)
        row = result.as_row()
        assert row["backend"] == "sim" and row["shards"] == 2
        assert row["atomic"] is True
        assert result.read_stats().p50 > 0
        assert result.throughput() > 0


class TestSimKVClusterDirect:
    def test_interactive_puts_and_gets(self):
        shard_map = ShardMap(2, readers=1, writers=1)
        cluster = SimKVCluster(shard_map, ["c1"])
        client = cluster.clients["c1"]
        outcomes = []
        client.put("a", "x", on_complete=outcomes.append)
        client.put("b", "y", on_complete=outcomes.append)
        cluster.run()
        client.get("a", on_complete=outcomes.append)
        cluster.run()
        assert outcomes[-1].value == "x"
        assert cluster.recorder.completed_operations == 3
        assert cluster.batch_stats().rounds > 0
