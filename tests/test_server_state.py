"""Unit tests for the server-side state machines."""

from __future__ import annotations

import pytest

from repro.core.timestamps import BOTTOM_TAG, Tag
from repro.protocols.codec import decode_tag, encode_tag
from repro.protocols.server_state import TagValueServer, ValueVectorServer
from repro.sim.messages import Message


def query(sender="r1"):
    return Message(sender, "s1", "query")


def update(tag, value, sender="w1"):
    return Message(sender, "s1", "update", {"tag": encode_tag(tag), "value": value})


class TestTagValueServer:
    def test_initial_state(self):
        server = TagValueServer("s1")
        reply = server.handle(query())
        assert decode_tag(reply.payload["tag"]) == BOTTOM_TAG
        assert reply.payload["value"] is None
        assert reply.kind == "query-ack"

    def test_update_adopts_larger_tag(self):
        server = TagValueServer("s1")
        server.handle(update(Tag(1, "w1"), "a"))
        reply = server.handle(update(Tag(3, "w2"), "b"))
        assert decode_tag(reply.payload["tag"]) == Tag(3, "w2")
        assert server.value == "b"

    def test_update_ignores_smaller_tag(self):
        server = TagValueServer("s1")
        server.handle(update(Tag(3, "w2"), "b"))
        server.handle(update(Tag(1, "w1"), "a"))
        assert server.tag == Tag(3, "w2")
        assert server.value == "b"

    def test_tie_break_by_writer(self):
        server = TagValueServer("s1")
        server.handle(update(Tag(2, "w1"), "a"))
        server.handle(update(Tag(2, "w2"), "b"))
        assert server.value == "b"

    def test_counts(self):
        server = TagValueServer("s1")
        server.handle(query())
        server.handle(update(Tag(1, "w1"), "a"))
        assert server.queries_served == 1 and server.updates_served == 1

    def test_unknown_kind_rejected(self):
        server = TagValueServer("s1")
        with pytest.raises(ValueError):
            server.handle(Message("x", "s1", "bogus"))


def read_msg(sender, val_queue=None):
    return Message(sender, "s1", "read", {"val_queue": val_queue or {}})


def write_msg(sender, tag, value):
    return Message(sender, "s1", "write", {"tag": encode_tag(tag), "value": value})


class TestValueVectorServer:
    def test_write_then_read_vector(self):
        server = ValueVectorServer("s1")
        ack = server.handle(write_msg("w1", Tag(1, "w1"), "hello"))
        assert ack.kind == "WRITEACK"
        reply = server.handle(read_msg("r1"))
        vector = reply.payload["vector"]
        entry = vector[encode_tag(Tag(1, "w1"))]
        assert entry["value"] == "hello"
        assert set(entry["updated"]) == {"w1", "r1"}

    def test_reader_added_to_current_value(self):
        # The step Lemma 8 relies on: replying to a read records the reader in
        # the updated set of the server's *current* value.
        server = ValueVectorServer("s1")
        server.handle(write_msg("w1", Tag(2, "w1"), "v2"))
        server.handle(read_msg("r1"))
        server.handle(read_msg("r2"))
        assert server.vector[Tag(2, "w1")].updated == {"w1", "r1", "r2"}

    def test_val_queue_merged(self):
        server = ValueVectorServer("s1")
        queue = {encode_tag(Tag(5, "w2")): "vq"}
        server.handle(read_msg("r1", queue))
        assert server.current == Tag(5, "w2")
        assert server.vector[Tag(5, "w2")].value == "vq"
        assert "r1" in server.vector[Tag(5, "w2")].updated

    def test_older_value_kept_in_vector(self):
        server = ValueVectorServer("s1")
        server.handle(write_msg("w1", Tag(1, "w1"), "old"))
        server.handle(write_msg("w2", Tag(2, "w2"), "new"))
        assert Tag(1, "w1") in server.vector
        assert server.current == Tag(2, "w2")

    def test_smaller_write_does_not_regress_current(self):
        server = ValueVectorServer("s1")
        server.handle(write_msg("w2", Tag(3, "w2"), "new"))
        server.handle(write_msg("w1", Tag(1, "w1"), "late"))
        assert server.current == Tag(3, "w2")

    def test_writeack_reports_current(self):
        server = ValueVectorServer("s1")
        server.handle(write_msg("w2", Tag(3, "w2"), "new"))
        ack = server.handle(write_msg("w1", Tag(1, "w1"), "late"))
        assert decode_tag(ack.payload["tag"]) == Tag(3, "w2")

    def test_pruning_keeps_recent_and_current(self):
        server = ValueVectorServer("s1", prune_to=2)
        for i in range(1, 6):
            server.handle(write_msg("w1", Tag(i, "w1"), f"v{i}"))
        assert server.current == Tag(5, "w1")
        assert Tag(5, "w1") in server.vector
        assert BOTTOM_TAG in server.vector
        assert len(server.vector) <= 4

    def test_counts(self):
        server = ValueVectorServer("s1")
        server.handle(write_msg("w1", Tag(1, "w1"), "x"))
        server.handle(read_msg("r1"))
        assert server.writes_served == 1 and server.reads_served == 1

    def test_unknown_kind_rejected(self):
        server = ValueVectorServer("s1")
        with pytest.raises(ValueError):
            server.handle(Message("x", "s1", "bogus"))


class TestCodec:
    def test_tag_round_trip(self):
        for tag in (BOTTOM_TAG, Tag(1, "w1"), Tag(42, "writer-x")):
            assert decode_tag(encode_tag(tag)) == tag
