"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.conditions import SystemParameters
from repro.protocols.registry import build_protocol
from repro.sim.delays import UniformDelay
from repro.sim.runtime import Simulation
from repro.util.ids import client_ids, server_ids


@pytest.fixture
def five_servers():
    return server_ids(5)


@pytest.fixture
def small_params():
    return SystemParameters(servers=5, writers=2, readers=2, max_faults=1)


@pytest.fixture
def make_simulation():
    """Factory fixture: build a Simulation for a protocol key."""

    def _make(
        protocol_key: str,
        servers: int = 5,
        max_faults: int = 1,
        readers: int = 2,
        writers: int = 2,
        seed: int = 0,
        **kwargs,
    ) -> Simulation:
        protocol = build_protocol(
            protocol_key,
            server_ids(servers),
            max_faults,
            readers=readers,
            writers=writers,
            **kwargs,
        )
        return Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=seed))

    return _make


@pytest.fixture
def writer_names():
    return client_ids("w", 2)


@pytest.fixture
def reader_names():
    return client_ids("r", 2)
