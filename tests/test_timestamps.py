"""Unit and property tests for tags and timestamps."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.timestamps import (
    BOTTOM_TAG,
    BOTTOM_WRITER,
    INITIAL_VALUE,
    Tag,
    TaggedValue,
    max_tag,
    next_tag,
)


class TestTagBasics:
    def test_bottom_tag_is_bottom(self):
        assert BOTTOM_TAG.is_bottom
        assert BOTTOM_TAG.ts == 0
        assert BOTTOM_TAG.wid == BOTTOM_WRITER

    def test_non_bottom_tag(self):
        assert not Tag(0, "w1").is_bottom
        assert not Tag(1, BOTTOM_WRITER).is_bottom

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Tag(-1, "w1")

    def test_equality_and_hash(self):
        assert Tag(3, "w1") == Tag(3, "w1")
        assert Tag(3, "w1") != Tag(3, "w2")
        assert hash(Tag(3, "w1")) == hash(Tag(3, "w1"))
        assert len({Tag(1, "w1"), Tag(1, "w1"), Tag(1, "w2")}) == 2

    def test_equality_against_other_types(self):
        assert Tag(1, "w1") != "not-a-tag"
        assert not (Tag(1, "w1") == 42)


class TestTagOrdering:
    def test_timestamp_dominates(self):
        assert Tag(1, "w9") < Tag(2, "w1")

    def test_writer_breaks_ties(self):
        assert Tag(2, "w1") < Tag(2, "w2")

    def test_bottom_smallest(self):
        assert BOTTOM_TAG < Tag(0, "w1")
        assert BOTTOM_TAG < Tag(1, "w1")

    def test_total_order_operators(self):
        a, b = Tag(1, "w1"), Tag(1, "w2")
        assert a < b and a <= b and b > a and b >= a

    def test_successor(self):
        assert Tag(4, "w1").successor("w2") == Tag(5, "w2")

    def test_successor_is_strictly_larger(self):
        tag = Tag(7, "w9")
        assert tag.successor("w1") > tag


class TestTaggedValue:
    def test_ordering_by_tag_only(self):
        assert TaggedValue(Tag(1, "w1"), "zzz") < TaggedValue(Tag(2, "w1"), "aaa")

    def test_equality_ignores_payload(self):
        assert TaggedValue(Tag(1, "w1"), "a") == TaggedValue(Tag(1, "w1"), "b")

    def test_initial_value(self):
        assert INITIAL_VALUE.is_initial
        assert not TaggedValue(Tag(1, "w1"), "x").is_initial

    def test_hashable(self):
        assert len({TaggedValue(Tag(1, "w1"), "a"), TaggedValue(Tag(1, "w1"), "b")}) == 1


class TestMaxAndNext:
    def test_max_tag_empty_defaults_to_bottom(self):
        assert max_tag([]) == BOTTOM_TAG

    def test_max_tag_custom_default(self):
        assert max_tag([], default=Tag(5, "w1")) == Tag(5, "w1")

    def test_max_tag_picks_largest(self):
        tags = [Tag(1, "w2"), Tag(3, "w1"), Tag(3, "w2"), Tag(2, "w9")]
        assert max_tag(tags) == Tag(3, "w2")

    def test_next_tag_increments_max(self):
        tags = [Tag(1, "w1"), Tag(4, "w2")]
        assert next_tag(tags, "w3") == Tag(5, "w3")

    def test_next_tag_from_nothing(self):
        assert next_tag([], "w1") == Tag(1, "w1")


tag_strategy = st.builds(
    Tag,
    ts=st.integers(min_value=0, max_value=1000),
    wid=st.sampled_from(["", "w1", "w2", "w3", "w10"]),
)


class TestTagProperties:
    @given(tag_strategy, tag_strategy)
    def test_total_order(self, a, b):
        assert (a < b) or (b < a) or (a == b)

    @given(tag_strategy, tag_strategy, tag_strategy)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(tag_strategy, st.sampled_from(["w1", "w2", "w5"]))
    def test_successor_dominates_everything_seen(self, tag, wid):
        assert tag.successor(wid) > tag

    @given(st.lists(tag_strategy, min_size=1, max_size=20))
    def test_max_tag_is_upper_bound(self, tags):
        top = max_tag(tags)
        assert all(t <= top for t in tags)
        assert top in tags

    @given(st.lists(tag_strategy, max_size=20), st.sampled_from(["w1", "w2"]))
    def test_next_tag_strictly_dominates_observed(self, tags, wid):
        new = next_tag(tags, wid)
        assert all(new > t for t in tags)
