"""Tests for the design-space lattice and round-trip classification (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.core.fastness import (
    LATTICE_EDGES,
    DesignPoint,
    RoundTripProfile,
    classify_round_trips,
    dominates,
    latency_rank,
)


class TestDesignPoint:
    def test_round_trip_attributes(self):
        assert DesignPoint.W1R2.write_rtts == 1
        assert DesignPoint.W1R2.read_rtts == 2
        assert DesignPoint.W2R1.fast_read and not DesignPoint.W2R1.fast_write
        assert DesignPoint.W1R1.fast_read and DesignPoint.W1R1.fast_write

    def test_from_round_trips(self):
        assert DesignPoint.from_round_trips(1, 2) is DesignPoint.W1R2
        assert DesignPoint.from_round_trips(2, 1) is DesignPoint.W2R1
        assert DesignPoint.from_round_trips(1, 1) is DesignPoint.W1R1
        assert DesignPoint.from_round_trips(2, 2) is DesignPoint.W2R2

    def test_from_round_trips_clamps_slow(self):
        # The paper only distinguishes fast (1) from not-fast (>= 2): W1Rk and
        # WkR1 for k >= 3 are covered by the same impossibility proofs.
        assert DesignPoint.from_round_trips(1, 5) is DesignPoint.W1R2
        assert DesignPoint.from_round_trips(4, 3) is DesignPoint.W2R2

    def test_from_round_trips_rejects_zero(self):
        with pytest.raises(ValueError):
            DesignPoint.from_round_trips(0, 1)

    def test_str(self):
        assert str(DesignPoint.W2R1) == "W2R1"


class TestLattice:
    def test_hasse_edges(self):
        assert (DesignPoint.W1R1, DesignPoint.W1R2) in LATTICE_EDGES
        assert (DesignPoint.W2R1, DesignPoint.W2R2) in LATTICE_EDGES
        assert len(LATTICE_EDGES) == 4

    def test_dominates_reflexive(self):
        for point in DesignPoint:
            assert dominates(point, point)

    def test_dominates_bottom_and_top(self):
        for point in DesignPoint:
            assert dominates(DesignPoint.W1R1, point)
            assert dominates(point, DesignPoint.W2R2)

    def test_incomparable_middle(self):
        assert not dominates(DesignPoint.W1R2, DesignPoint.W2R1)
        assert not dominates(DesignPoint.W2R1, DesignPoint.W1R2)

    def test_latency_rank(self):
        assert latency_rank(DesignPoint.W1R1) == 2
        assert latency_rank(DesignPoint.W2R2) == 4
        assert latency_rank(DesignPoint.W1R2) == latency_rank(DesignPoint.W2R1) == 3

    def test_edges_increase_latency(self):
        for faster, slower in LATTICE_EDGES:
            assert latency_rank(faster) < latency_rank(slower)
            assert dominates(faster, slower)


class TestClassification:
    def test_classify_from_counts(self):
        assert classify_round_trips([2, 2], [2, 2]) is DesignPoint.W2R2
        assert classify_round_trips([1, 1], [2]) is DesignPoint.W1R2
        assert classify_round_trips([2], [1, 1, 1]) is DesignPoint.W2R1

    def test_classify_uses_worst_case(self):
        # One slow read is enough to lose the "fast read" classification.
        assert classify_round_trips([2, 2], [1, 1, 2]) is DesignPoint.W2R2

    def test_classify_empty_defaults_fast(self):
        assert classify_round_trips([], []) is DesignPoint.W1R1

    def test_profile(self):
        profile = RoundTripProfile(
            write_rtts={"a": 2, "b": 2}, read_rtts={"c": 1, "d": 1}
        )
        assert profile.design_point() is DesignPoint.W2R1
        assert profile.max_write_rtts == 2
        assert profile.mean_read_rtts == 1.0

    def test_profile_empty(self):
        profile = RoundTripProfile(write_rtts={}, read_rtts={})
        assert profile.mean_write_rtts == 0.0
        assert profile.design_point() is DesignPoint.W1R1
