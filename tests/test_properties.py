"""Cross-module property-based tests.

These are the library's headline invariants:

* every protocol the theory says is correct produces atomic histories under
  *randomly generated* workloads, delays and crash patterns;
* the chain argument's links verify for random (S, i1) choices;
* the sieve succeeds whenever at least three servers are unaffected;
* the empirical fast-read boundary coincides with ``R < S/t - 2`` on random
  configurations.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consistency import check_atomicity
from repro.core.conditions import fast_read_bound
from repro.protocols.registry import build_protocol
from repro.sim.delays import UniformDelay
from repro.sim.network import SkipRule
from repro.sim.runtime import Simulation
from repro.theory.chains import verify_chain_argument
from repro.theory.fast_read_bound import run_fig9_experiment
from repro.theory.sieve import run_sieve
from repro.util.ids import client_ids, server_ids
from repro.workloads.generators import apply_open_loop, uniform_open_loop

_slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestProtocolAtomicityProperties:
    @_slow
    @given(
        key=st.sampled_from(["abd-mwmr", "fast-read-mwmr"]),
        seed=st.integers(min_value=0, max_value=10_000),
        servers=st.integers(min_value=5, max_value=8),
        crash=st.booleans(),
    )
    def test_correct_multi_writer_protocols_random_runs(self, key, seed, servers, crash):
        protocol = build_protocol(key, server_ids(servers), 1, readers=2, writers=2)
        simulation = Simulation(protocol, delay_model=UniformDelay(0.2, 2.0, seed=seed))
        workload = uniform_open_loop(
            client_ids("w", 2), client_ids("r", 2),
            writes_per_writer=3, reads_per_reader=4, horizon=80.0, seed=seed,
        )
        apply_open_loop(simulation, workload)
        if crash:
            simulation.crash_server(f"s{servers}", at=float(seed % 40))
        result = simulation.run()
        verdict = check_atomicity(result.history)
        assert verdict.atomic, verdict.report.summary()

    @_slow
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        skipped_server=st.integers(min_value=1, max_value=5),
    )
    def test_fast_read_protocol_with_adversarial_skips(self, seed, skipped_server):
        """Random message skipping within the fault budget never breaks atomicity."""
        protocol = build_protocol("fast-read-mwmr", server_ids(7), 1, readers=2, writers=2)
        simulation = Simulation(protocol, delay_model=UniformDelay(0.2, 1.5, seed=seed))
        simulation.add_skip_rule(
            SkipRule(receiver=f"s{skipped_server}", kind="read", both_directions=False)
        )
        workload = uniform_open_loop(
            client_ids("w", 2), client_ids("r", 2), 2, 4, horizon=60.0, seed=seed
        )
        apply_open_loop(simulation, workload)
        result = simulation.run()
        assert check_atomicity(result.history).atomic


class TestTheoryProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        num_servers=st.integers(min_value=3, max_value=7),
        data=st.data(),
    )
    def test_chain_argument_verifies_everywhere(self, num_servers, data):
        critical = data.draw(st.integers(min_value=1, max_value=num_servers))
        use_prime = data.draw(st.booleans())
        certificate = verify_chain_argument(num_servers, critical, use_prime=use_prime)
        assert certificate.all_verified

    @settings(max_examples=15, deadline=None)
    @given(
        num_servers=st.integers(min_value=4, max_value=9),
        data=st.data(),
    )
    def test_sieve_succeeds_with_three_unaffected(self, num_servers, data):
        max_affected = num_servers - 3
        affected_count = data.draw(st.integers(min_value=0, max_value=max_affected))
        servers = server_ids(num_servers)
        affected = data.draw(
            st.sets(st.sampled_from(servers), min_size=affected_count, max_size=affected_count)
        )
        certificate = run_sieve(num_servers, affected_servers=sorted(affected))
        if len(certificate.unaffected) >= 3:
            assert certificate.all_verified
        else:
            assert not certificate.all_verified

    @settings(max_examples=10, deadline=None)
    @given(
        servers=st.integers(min_value=4, max_value=9),
        faults=st.integers(min_value=1, max_value=2),
        readers=st.integers(min_value=2, max_value=5),
    )
    def test_fig9_boundary_matches_theory(self, servers, faults, readers):
        if 2 * faults >= servers:
            return
        result = run_fig9_experiment(servers, faults, readers)
        impossible = readers >= fast_read_bound(servers, faults)
        assert result.violation_found == impossible
