"""Tests for abstract executions and the full-info model views."""

from __future__ import annotations

import pytest

from repro.core.errors import ProofError
from repro.theory.executions import (
    AbstractExecution,
    R1_1,
    R1_2,
    R2_1,
    R2_2,
    W1,
    W2,
)
from repro.theory.fullinfo import (
    FirstRoundPriorityRule,
    LastWriteWinsRule,
    MajorityOrderRule,
    PessimisticOldValueRule,
    full_info_view,
    indistinguishable,
)
from repro.util.ids import server_ids

SERVERS = server_ids(3)


def simple_execution(name="e", swapped=()):
    receive = {
        s: ((W2, W1) if s in swapped else (W1, W2)) + (R1_1, R2_1, R1_2, R2_2)
        for s in SERVERS
    }
    client_order = (("W1", "W2"), ("W1", "R1"), ("W2", "R1"), ("W1", "R2"), ("W2", "R2"))
    return AbstractExecution.build(name, SERVERS, receive, client_order)


class TestPhase:
    def test_attributes(self):
        assert W1.is_write and not W1.is_read
        assert R1_2.is_read and R1_2.reader == "R1"
        assert str(R2_1) == "R2(1)" and str(W2) == "W2"


class TestAbstractExecution:
    def test_build_requires_all_servers(self):
        with pytest.raises(ProofError):
            AbstractExecution.build("x", SERVERS, {"s1": (W1,)}, ())

    def test_swap_on_server(self):
        execution = simple_execution()
        swapped = execution.swap_on_server("s1", W1, W2)
        assert swapped.receive_order["s1"][:2] == (W2, W1)
        assert swapped.receive_order["s2"][:2] == (W1, W2)

    def test_swap_missing_phase_rejected(self):
        execution = simple_execution().skip_phase_on("s1", W1)
        with pytest.raises(ProofError):
            execution.swap_on_server("s1", W1, W2)

    def test_skip_and_unskip(self):
        execution = simple_execution()
        skipped = execution.skip_phase_on("s2", R2_2)
        assert skipped.skips(R2_2) == {"s2"}
        restored = skipped.unskip_phase_on("s2", R2_2, after=R1_2)
        order = restored.receive_order["s2"]
        assert order.index(R2_2) == order.index(R1_2) + 1

    def test_unskip_after_missing_anchor_rejected(self):
        execution = simple_execution().skip_phase_on("s1", R1_2)
        with pytest.raises(ProofError):
            execution.skip_phase_on("s1", R2_2).unskip_phase_on("s1", R2_2, after=R1_2)

    def test_server_log_before(self):
        execution = simple_execution()
        assert execution.server_log_before("s1", R1_1) == (W1, W2)
        with pytest.raises(ProofError):
            execution.skip_phase_on("s1", R1_1).server_log_before("s1", R1_1)

    def test_precedes_transitive(self):
        execution = simple_execution()
        assert execution.precedes("W1", "R2")
        assert not execution.precedes("R1", "W1")

    def test_forced_read_value(self):
        execution = simple_execution()
        assert execution.forced_read_value("R1") == 2
        reversed_order = AbstractExecution.build(
            "rev",
            SERVERS,
            {s: (W2, W1, R1_1, R1_2) for s in SERVERS},
            (("W2", "W1"), ("W1", "R1"), ("W2", "R1")),
        )
        assert reversed_order.forced_read_value("R1") == 1

    def test_forced_value_none_when_concurrent(self):
        execution = AbstractExecution.build(
            "conc",
            SERVERS,
            {s: (W1, W2, R1_1, R1_2) for s in SERVERS},
            (("W1", "R1"), ("W2", "R1")),
        )
        assert execution.forced_read_value("R1") is None

    def test_forced_value_none_when_read_concurrent_with_writes(self):
        execution = AbstractExecution.build(
            "conc2",
            SERVERS,
            {s: (W1, W2, R1_1, R1_2) for s in SERVERS},
            (("W1", "W2"),),
        )
        assert execution.forced_read_value("R1") is None

    def test_describe_mentions_every_server(self):
        text = simple_execution().describe()
        for server in SERVERS:
            assert server in text


class TestViewsAndIndistinguishability:
    def test_view_structure(self):
        execution = simple_execution()
        view = full_info_view(execution, "R1")
        assert view.servers(1) == tuple(SERVERS)
        assert view.servers(2) == tuple(SERVERS)
        # Round-1 prefix contains only the writes.
        assert [e.label for e in view.log_at(1, "s1")] == ["W1", "W2"]
        # Round-2 prefix additionally contains both first read round-trips.
        assert [e.label for e in view.log_at(2, "s1")] == ["W1", "W2", "R1(1)", "R2(1)"]

    def test_skipped_server_absent_from_view(self):
        execution = simple_execution().skip_phase_on("s2", R1_2)
        view = full_info_view(execution, "R1")
        assert "s2" not in view.servers(2)
        assert "s2" in view.servers(1)

    def test_indistinguishable_when_only_hidden_servers_change(self):
        base = simple_execution("a")
        # Change the write order on a server that R1 skips entirely.
        modified = base.skip_phase_on("s3", R1_1).skip_phase_on("s3", R1_2)
        other = modified.swap_on_server("s3", W1, W2, name="b")
        assert indistinguishable(modified, other, "R1")

    def test_distinguishable_when_visible_server_changes(self):
        assert not indistinguishable(
            simple_execution("a"), simple_execution("b", swapped=("s1",)), "R1"
        )

    def test_second_round_carries_first_round_view(self):
        # R2's round-2 entries for R1(2) embed R1's round-1 view, so changing
        # what R1 saw in round 1 is visible to R2 even on other servers.
        base = simple_execution("a")
        # In `base`, R1(2) is processed after R2(2)?  No: order is R1_2 then
        # R2_2, so R2's round-2 prefix contains R1(2).  Give R1 a different
        # round-1 view by letting R1(1) skip s3.
        modified = base.skip_phase_on("s3", R1_1).rename("b")
        assert not indistinguishable(base, modified, "R2")

    def test_views_hashable_and_equal(self):
        a = full_info_view(simple_execution("x"), "R1")
        b = full_info_view(simple_execution("y"), "R1")
        assert a == b


class TestReadRules:
    def test_rules_respect_forced_values(self):
        head = AbstractExecution.build(
            "head",
            SERVERS,
            {s: (W1, W2, R1_1, R1_2) for s in SERVERS},
            (("W1", "W2"), ("W2", "R1"), ("W1", "R1")),
        )
        tail = AbstractExecution.build(
            "tail",
            SERVERS,
            {s: (W2, W1, R1_1, R1_2) for s in SERVERS},
            (("W2", "W1"), ("W1", "R1"), ("W2", "R1")),
        )
        for rule in (
            LastWriteWinsRule(),
            MajorityOrderRule(),
            FirstRoundPriorityRule(),
            PessimisticOldValueRule(),
        ):
            assert rule.decide(full_info_view(head, "R1")) == 2
            assert rule.decide(full_info_view(tail, "R1")) == 1

    def test_rules_are_deterministic_functions_of_the_view(self):
        execution = simple_execution()
        for rule in (LastWriteWinsRule(), MajorityOrderRule()):
            first = rule.decide(full_info_view(execution, "R1"))
            second = rule.decide(full_info_view(execution, "R1"))
            assert first == second

    def test_write_order_helper(self):
        view = full_info_view(simple_execution(), "R1")
        orders = LastWriteWinsRule.observed_orders(view)
        assert orders == ["12", "12", "12"]
