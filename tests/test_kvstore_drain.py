"""Adversity tests for the incremental key-range drain protocol.

The control plane's five-stage drain (fence -> host -> transfer/install per
range -> complete) must survive the failure modes a real migration sees:

* **replica crash mid-transfer** -- the control plane retries, gives the
  replica up for dead, and routes the dead donor's state to its paired
  receiver as the merged blobs of the surviving donors;
* **duplicated and reordered drain frames** -- every handler is idempotent
  and acks are matched by token, so a retried frame that raced its ack (or
  a transport that duplicates) changes nothing;
* **client ops racing a fenced range** -- ops on keys mid-drain bounce off
  the fence, back off (they are not *stale*, the view is fresh), and
  complete after the range installs, with per-key atomicity intact.

A final cross-backend check scripts one identical drain through the pure
memory fabric, the simulator adapter, and the asyncio adapter and asserts
the control engines emitted the same drain-frame multiset -- the
no-drift-by-construction property extended to the control plane.
"""

from __future__ import annotations

import itertools

from test_kvstore_engine import (
    MemoryFabric,
    build_memory_stack,
    run_script,
)

from repro.core.operations import OpKind
from repro.kvstore import (
    AsyncKVCluster,
    KVStore,
    ShardMap,
    SimKVCluster,
    check_per_key_atomicity,
)
from repro.kvstore.engine import (
    CONTROL_PLANE,
    ControlPlaneEngine,
    SendFrame,
)

#: Above the memory fabric's 2.0-unit round trip, so resends only happen
#: for frames that were really lost (a crashed replica), never for slow acks.
FABRIC_RETRY_DELAY = 10.0


def _tap_drain_sends(engine: ControlPlaneEngine, trace: list) -> None:
    """Record every drain frame the control engine emits, at the boundary."""

    def record(effects):
        for effect in effects:
            if isinstance(effect, SendFrame) and \
                    effect.frame.kind.startswith("drain-"):
                trace.append((effect.frame.kind, effect.destination,
                              effect.frame.payload.get("shard")))

    def wrap_returning_effects(name):
        original = getattr(engine, name)

        def wrapper(*args, **kwargs):
            effects = original(*args, **kwargs)
            record(effects)
            return effects

        setattr(engine, name, wrapper)

    def wrap_returning_pair(name):
        original = getattr(engine, name)

        def wrapper(*args, **kwargs):
            result, effects = original(*args, **kwargs)
            record(effects)
            return result, effects

        setattr(engine, name, wrapper)

    wrap_returning_effects("on_frame")
    wrap_returning_effects("on_timer")
    wrap_returning_pair("start_resize")
    wrap_returning_pair("start_move")


class TestDrainAdversity:
    def _stack_with_data(self, num_keys=16):
        shard_map, fabric, client, _proxy, recorder = build_memory_stack(
            num_shards=4, num_groups=2
        )
        run_script(fabric, client,
                   [(OpKind.WRITE, f"k{i}", f"v{i}") for i in range(num_keys)])
        return shard_map, fabric, client, recorder

    def test_replica_crash_mid_transfer_completes_with_merged_donors(self):
        shard_map, fabric, client, recorder = self._stack_with_data()
        control = ControlPlaneEngine(
            shard_map, retry_delay=FABRIC_RETRY_DELAY, drain_range_size=2
        )
        fabric.register(CONTROL_PLANE, control)
        report, effects = control.start_resize(8)
        donors = {server
                  for shard in report.shards_fenced
                  for server in shard_map.groups[
                      # the donor group as it was fenced: every fenced shard
                      # still routes to its (new) spec's group servers
                      shard_map.shards[shard].group.group_id].servers
                  if shard in shard_map.shards}
        victim = sorted(donors)[0]
        # Crash the donor replica right after the fence round lands (fence
        # acks return at t=2.0) but before any transfer frame reaches it.
        fabric._push(3.0, lambda: fabric._engines.pop(victim, None))
        fabric.execute(CONTROL_PLANE, effects)
        fabric.run()
        assert report.done
        assert control.drains_completed == 1
        # The victim was given up on, not waited for forever.
        assert report.keys_moved > 0
        # Every key still reads back its last written value: the dead
        # donor's blobs were absorbed from the surviving replicas.
        run_script(fabric, client,
                   [(OpKind.READ, f"k{i}", None) for i in range(16)])
        verdict = check_per_key_atomicity(recorder.histories())
        assert verdict.all_atomic, verdict.summary()

    def test_duplicated_and_reordered_drain_frames_are_harmless(self):
        shard_map, fabric, client, recorder = self._stack_with_data()
        control = ControlPlaneEngine(
            shard_map, retry_delay=FABRIC_RETRY_DELAY, drain_range_size=2
        )
        fabric.register(CONTROL_PLANE, control)

        # A hostile transport: every drain frame is delivered twice, the
        # duplicate arriving 5 units late -- after later-stage frames, so
        # dupes are also *reordered* against the protocol's stage sequence.
        original_execute = fabric.execute

        def duplicating_execute(owner_id, effects):
            original_execute(owner_id, effects)
            for effect in effects:
                if isinstance(effect, SendFrame) and \
                        effect.frame.kind.startswith("drain-"):
                    fabric._push(
                        5.0, lambda eff=effect: fabric._deliver(eff))

        fabric.execute = duplicating_execute
        report, effects = control.start_resize(8)
        fabric.execute(CONTROL_PLANE, effects)
        fabric.run()
        fabric.execute = original_execute
        assert report.done
        assert control.drains_completed == 1
        run_script(fabric, client,
                   [(OpKind.READ, f"k{i}", None) for i in range(16)])
        verdict = check_per_key_atomicity(recorder.histories())
        assert verdict.all_atomic, verdict.summary()

    def test_client_ops_racing_a_fenced_range_back_off_and_complete(self):
        shard_map, fabric, client, recorder = self._stack_with_data()
        control = ControlPlaneEngine(
            shard_map, retry_delay=FABRIC_RETRY_DELAY, drain_range_size=1
        )
        fabric.register(CONTROL_PLANE, control)
        report, effects = control.start_resize(8)
        fabric.execute(CONTROL_PLANE, effects)
        # While ranges drain one key at a time, keep writing the same keys:
        # issues staggered across the whole drain window so some rounds are
        # guaranteed to land on fenced donors and pending receivers.
        counter = itertools.count()

        def issue(i):
            op_id, client_effects = client.invoke(
                OpKind.WRITE, f"k{i % 16}", f"w{next(counter)}")
            fabric.callbacks[op_id] = lambda outcome: None
            fabric.execute("c1", client_effects)

        for i in range(48):
            fabric._push(0.5 + i * 1.0, lambda i=i: issue(i))
        fabric.run()
        assert report.done
        assert control.drains_completed == 1
        # The race really happened, and was classified as a drain bounce
        # (fresh view, fenced range), not as view staleness.
        assert client.drain_backoffs >= 1
        assert not fabric.failures
        run_script(fabric, client,
                   [(OpKind.READ, f"k{i}", None) for i in range(16)])
        verdict = check_per_key_atomicity(recorder.histories())
        assert verdict.all_atomic, verdict.summary()


class TestCrossBackendDrainEquivalence:
    """One scripted drain emits the same drain-frame multiset everywhere."""

    KEYS = [f"k{i}" for i in range(12)]

    def _memory_trace(self):
        shard_map, fabric, client, _proxy, recorder = build_memory_stack(
            num_shards=4, num_groups=2
        )
        run_script(fabric, client,
                   [(OpKind.WRITE, key, f"v-{key}") for key in self.KEYS])
        control = ControlPlaneEngine(
            shard_map, retry_delay=FABRIC_RETRY_DELAY, drain_range_size=2
        )
        trace: list = []
        _tap_drain_sends(control, trace)
        fabric.register(CONTROL_PLANE, control)
        report, effects = control.start_resize(8)
        fabric.execute(CONTROL_PLANE, effects)
        fabric.run()
        assert report.done
        verdict = check_per_key_atomicity(recorder.histories())
        assert verdict.all_atomic, verdict.summary()
        return sorted(trace)

    def _sim_trace(self):
        shard_map = ShardMap(4, num_groups=2, readers=1, writers=1)
        cluster = SimKVCluster(shard_map, ["c1"], drain_range_size=2)
        for key in self.KEYS:
            cluster.clients["c1"].put(key, f"v-{key}")
        cluster.run()
        trace: list = []
        _tap_drain_sends(cluster.control.engine, trace)
        report = cluster.resize(8)
        assert report.done
        return sorted(trace)

    def _asyncio_trace(self):
        import asyncio

        async def scenario():
            shard_map = ShardMap(4, num_groups=2, readers=1, writers=1)
            cluster = AsyncKVCluster(shard_map, drain_range_size=2)
            # Loopback acks land in milliseconds; a generous retry delay
            # keeps slow-CI runs from resending frames the sim never resends.
            cluster.control.retry_delay = 5.0
            await cluster.start()
            store = KVStore(cluster, client_id="c1")
            await store.connect()
            trace: list = []
            try:
                for key in self.KEYS:
                    await store.put(key, f"v-{key}")
                _tap_drain_sends(cluster.control, trace)
                report = cluster.resize(8)
                await cluster.flush_migrations()
                assert report.done
            finally:
                await store.close()
                await cluster.stop()
            return sorted(trace)

        return asyncio.run(scenario())

    def test_drain_frame_streams_are_identical(self):
        memory = self._memory_trace()
        sim = self._sim_trace()
        net = self._asyncio_trace()
        assert memory == sim == net
        # Sanity: the drain really ran in stages -- fences, per-range
        # transfers and installs, and completions all present.
        kinds = {kind for kind, _dest, _shard in memory}
        assert {"drain-fence", "drain-transfer",
                "drain-install", "drain-complete"} <= kinds
