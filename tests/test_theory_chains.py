"""Tests for the mechanized chain argument (Sections 3.2-3.4, Fig. 3-7)."""

from __future__ import annotations

import pytest

from repro.core.errors import ProofError
from repro.theory.chains import (
    build_alpha_chain,
    build_alpha_tail,
    build_beta_candidates,
    build_beta_chain,
    build_diagonal_link,
    build_horizontal_link,
    build_modified_tails,
    verify_chain_argument,
)
from repro.theory.executions import R1_1, R1_2, R2_1, R2_2, W1, W2
from repro.theory.fullinfo import indistinguishable
from repro.util.ids import server_ids


class TestAlphaChain:
    def test_chain_length_and_swapping(self):
        servers = server_ids(4)
        chain = build_alpha_chain(servers)
        assert len(chain) == 5
        # alpha_i has the writes swapped on exactly the first i servers.
        for i, execution in enumerate(chain):
            swapped = [
                s for s in servers if execution.receive_order[s][:2] == (W2, W1)
            ]
            assert swapped == servers[:i]

    def test_head_forces_two_tail_forces_one(self):
        servers = server_ids(3)
        chain = build_alpha_chain(servers)
        tail = build_alpha_tail(servers)
        assert chain[0].forced_read_value("R1") == 2
        assert tail.forced_read_value("R1") == 1

    def test_last_alpha_indistinguishable_from_tail(self):
        servers = server_ids(5)
        chain = build_alpha_chain(servers)
        tail = build_alpha_tail(servers)
        assert indistinguishable(chain[-1], tail, "R1")

    def test_consecutive_alphas_differ_on_one_server(self):
        servers = server_ids(4)
        chain = build_alpha_chain(servers)
        for left, right in zip(chain, chain[1:]):
            differing = [
                s for s in servers if left.receive_order[s] != right.receive_order[s]
            ]
            assert len(differing) == 1

    def test_no_second_reader_in_alpha(self):
        chain = build_alpha_chain(server_ids(3))
        for execution in chain:
            assert not execution.phase_present(R2_1)
            assert not execution.phase_present(R2_2)


class TestBetaChains:
    def test_candidate_chains_structure(self):
        servers = server_ids(4)
        prime, double = build_beta_candidates(servers, critical_index=2)
        assert len(prime) == len(double) == 5
        # The stems differ exactly on the critical server's write order.
        for p, d in zip(prime, double):
            differing = [
                s for s in servers
                if p.receive_order[s][:2] != d.receive_order[s][:2]
            ]
            assert differing == ["s2"]

    def test_candidate_read_swaps(self):
        servers = server_ids(4)
        prime, _ = build_beta_candidates(servers, critical_index=1)
        for i, execution in enumerate(prime):
            for j, server in enumerate(servers):
                order = execution.receive_order[server]
                if j < i:
                    assert order.index(R2_2) < order.index(R1_2)
                else:
                    assert order.index(R1_2) < order.index(R2_2)

    def test_invalid_critical_index(self):
        with pytest.raises(ProofError):
            build_beta_candidates(server_ids(3), 0)
        with pytest.raises(ProofError):
            build_beta_candidates(server_ids(3), 4)

    def test_modified_tails_indistinguishable_to_r2(self):
        servers = server_ids(4)
        for critical in range(1, 5):
            tail_prime, tail_double = build_modified_tails(servers, critical)
            assert indistinguishable(tail_prime, tail_double, "R2")

    def test_beta_chain_r2_skips_critical_server(self):
        servers = server_ids(4)
        chain = build_beta_chain(servers, critical_index=3)
        for execution in chain:
            assert "s3" in execution.skips(R2_1)
            assert "s3" in execution.skips(R2_2)
            # R1 remains skip-free.
            assert execution.skips(R1_1) == frozenset()
            assert execution.skips(R1_2) == frozenset()

    def test_beta_chain_realizable_with_one_fault(self):
        chain = build_beta_chain(server_ids(5), critical_index=2)
        for execution in chain:
            for phase in (W1, W2, R1_1, R1_2, R2_1, R2_2):
                assert len(execution.skips(phase)) <= 1


class TestZigzagLinks:
    @pytest.mark.parametrize("num_servers", [3, 4, 5])
    def test_horizontal_links(self, num_servers):
        servers = server_ids(num_servers)
        for critical in range(1, num_servers + 1):
            beta = build_beta_chain(servers, critical)
            for k in range(num_servers):
                temp, gamma = build_horizontal_link(beta[k], servers, k, critical)
                if temp is None:
                    assert indistinguishable(beta[k], gamma, "R2")
                else:
                    assert indistinguishable(beta[k], temp, "R1")
                    assert indistinguishable(temp, gamma, "R2")

    @pytest.mark.parametrize("num_servers", [3, 4, 5])
    def test_diagonal_links(self, num_servers):
        servers = server_ids(num_servers)
        for critical in range(1, num_servers + 1):
            beta = build_beta_chain(servers, critical)
            for k in range(num_servers):
                temp, gamma = build_diagonal_link(beta[k + 1], servers, k, critical)
                if temp is None:
                    assert indistinguishable(beta[k + 1], gamma, "R2")
                else:
                    assert indistinguishable(beta[k + 1], temp, "R2")
                    assert indistinguishable(temp, gamma, "R1")

    def test_gamma_and_gamma_prime_identical(self):
        servers = server_ids(4)
        critical = 2
        beta = build_beta_chain(servers, critical)
        for k in range(len(servers)):
            _, gamma = build_horizontal_link(beta[k], servers, k, critical)
            _, gamma_prime = build_diagonal_link(beta[k + 1], servers, k, critical)
            assert dict(gamma.receive_order) == dict(gamma_prime.receive_order)


class TestCertificate:
    @pytest.mark.parametrize("num_servers", [3, 4, 6])
    def test_all_links_verified(self, num_servers):
        for critical in range(1, num_servers + 1):
            certificate = verify_chain_argument(num_servers, critical)
            assert certificate.all_verified, [
                link.name for link in certificate.failed_links
            ]
            assert certificate.executions_constructed() > 3 * num_servers
            assert "VERIFIED" in certificate.summary()

    def test_uses_double_prime_chain(self):
        certificate = verify_chain_argument(4, 2, use_prime=False)
        assert certificate.all_verified

    def test_small_systems_rejected(self):
        with pytest.raises(ProofError):
            verify_chain_argument(2, 1)
        with pytest.raises(ProofError):
            verify_chain_argument(4, 5)

    def test_link_kinds_present(self):
        certificate = verify_chain_argument(4, 1)
        kinds = {link.kind for link in certificate.links}
        assert kinds == {"indistinguishability", "structural-equality", "realizability"}
