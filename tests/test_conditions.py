"""Tests for the design-space feasibility conditions (Table 1 predicates)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.conditions import (
    SystemParameters,
    fast_read_bound,
    fast_read_possible,
    fast_read_write_possible,
    fast_write_possible,
    is_feasible,
    majority_quorum_possible,
    max_readers_for_fast_reads,
    min_servers_for_fast_reads,
    parameter_sweep,
    validate_parameters,
    w2r2_possible,
)
from repro.core.errors import ConfigurationError
from repro.core.fastness import DesignPoint


class TestValidation:
    def test_rejects_single_server(self):
        with pytest.raises(ConfigurationError):
            validate_parameters(1, 2, 2, 0)

    def test_rejects_zero_writers(self):
        with pytest.raises(ConfigurationError):
            validate_parameters(3, 0, 2, 1)

    def test_rejects_zero_readers(self):
        with pytest.raises(ConfigurationError):
            validate_parameters(3, 2, 0, 1)

    def test_rejects_negative_faults(self):
        with pytest.raises(ConfigurationError):
            validate_parameters(3, 2, 2, -1)

    def test_rejects_faults_equal_servers(self):
        with pytest.raises(ConfigurationError):
            validate_parameters(3, 2, 2, 3)

    def test_dataclass_validates(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(servers=2, writers=2, readers=2, max_faults=2)

    def test_quorum_size(self):
        params = SystemParameters(5, 2, 2, 1)
        assert params.quorum_size == 4
        assert params.is_multi_writer and params.is_multi_reader


class TestMajority:
    @pytest.mark.parametrize(
        "servers,faults,expected",
        [(3, 1, True), (2, 1, False), (5, 2, True), (4, 2, False), (7, 3, True)],
    )
    def test_majority_condition(self, servers, faults, expected):
        assert majority_quorum_possible(servers, faults) is expected

    def test_w2r2_matches_majority(self):
        assert w2r2_possible(SystemParameters(5, 2, 2, 2))
        assert not w2r2_possible(SystemParameters(4, 2, 2, 2))


class TestFastReadBound:
    def test_bound_value(self):
        assert fast_read_bound(6, 1) == 4.0
        assert fast_read_bound(6, 2) == 1.0

    def test_bound_infinite_without_faults(self):
        assert fast_read_bound(5, 0) == float("inf")

    @pytest.mark.parametrize(
        "servers,faults,readers,expected",
        [
            (5, 1, 2, True),   # 2 < 3
            (5, 1, 3, False),  # 3 >= 3
            (4, 1, 2, False),  # 2 >= 2
            (7, 1, 4, True),   # 4 < 5
            (8, 2, 2, False),  # 2 >= 2
            (9, 2, 2, True),   # 2 < 2.5
        ],
    )
    def test_fast_read_possible(self, servers, faults, readers, expected):
        params = SystemParameters(servers, 2, readers, faults)
        assert fast_read_possible(params) is expected

    def test_max_readers(self):
        assert max_readers_for_fast_reads(7, 1) == 4   # bound 5, strict
        assert max_readers_for_fast_reads(6, 1) == 3   # bound 4 is integral -> 3
        assert max_readers_for_fast_reads(5, 0) >= 10**6

    def test_min_servers(self):
        # Smallest S with R < S/t - 2.
        assert min_servers_for_fast_reads(2, 1) == 5
        assert min_servers_for_fast_reads(2, 2) == 9
        assert min_servers_for_fast_reads(3, 1) == 6

    def test_min_servers_consistent_with_predicate(self):
        for readers in (1, 2, 3, 4):
            for faults in (1, 2):
                smallest = min_servers_for_fast_reads(readers, faults)
                assert fast_read_possible(SystemParameters(smallest, 2, readers, faults))
                if smallest - 1 > 2 * faults:
                    assert not fast_read_possible(
                        SystemParameters(smallest - 1, 2, readers, faults)
                    )


class TestFastWrite:
    def test_impossible_multi_writer_multi_reader(self):
        assert not fast_write_possible(SystemParameters(5, 2, 2, 1))

    def test_possible_single_writer(self):
        assert fast_write_possible(SystemParameters(5, 1, 2, 1))

    def test_possible_single_reader(self):
        assert fast_write_possible(SystemParameters(5, 2, 1, 1))

    def test_possible_without_faults(self):
        assert fast_write_possible(SystemParameters(5, 2, 2, 0))


class TestFastReadWrite:
    def test_impossible_multi_writer(self):
        assert not fast_read_write_possible(SystemParameters(9, 2, 2, 1))

    def test_single_writer_needs_fast_read_condition(self):
        assert fast_read_write_possible(SystemParameters(5, 1, 2, 1))
        assert not fast_read_write_possible(SystemParameters(4, 1, 2, 1))


class TestIsFeasible:
    def test_table1_at_canonical_configuration(self):
        params = SystemParameters(5, 2, 2, 1)
        assert is_feasible(DesignPoint.W2R2, params)
        assert not is_feasible(DesignPoint.W1R2, params)
        assert is_feasible(DesignPoint.W2R1, params)
        assert not is_feasible(DesignPoint.W1R1, params)

    def test_nothing_feasible_without_majorities(self):
        params = SystemParameters(4, 2, 2, 2)
        for point in DesignPoint:
            assert not is_feasible(point, params)

    def test_fast_read_infeasible_when_bound_violated(self):
        params = SystemParameters(4, 2, 2, 1)
        assert not is_feasible(DesignPoint.W2R1, params)


class TestSweep:
    def test_sweep_skips_invalid(self):
        combos = list(parameter_sweep(range(2, 5), [2], [2], range(0, 4)))
        assert all(p.max_faults < p.servers for p in combos)
        assert combos  # non-empty

    def test_sweep_counts(self):
        combos = list(parameter_sweep([3, 5], [1, 2], [2], [1]))
        assert len(combos) == 4


class TestConditionProperties:
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    def test_fast_read_monotone_in_servers(self, servers, faults, readers):
        if faults >= servers:
            return
        params = SystemParameters(servers, 2, readers, faults)
        bigger = SystemParameters(servers + 1, 2, readers, faults)
        if fast_read_possible(params):
            assert fast_read_possible(bigger)

    @given(
        st.integers(min_value=3, max_value=30),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=10),
    )
    def test_fast_read_antitone_in_readers(self, servers, faults, readers):
        if faults >= servers:
            return
        params = SystemParameters(servers, 2, readers, faults)
        fewer = SystemParameters(servers, 2, readers - 1, faults)
        if fast_read_possible(params):
            assert fast_read_possible(fewer)
