"""Tests for the kv store on the asyncio TCP backend (facade + sync wrapper)."""

from __future__ import annotations

import asyncio

import pytest

from repro.kvstore import (
    AsyncKVCluster,
    KVStore,
    ShardMap,
    SyncKVStore,
    generate_workload,
    run_asyncio_kv_workload,
)
from repro.kvstore._sync import LoopThread, run_sync


class TestRunSync:
    def test_returns_value(self):
        async def compute():
            await asyncio.sleep(0)
            return 42

        assert run_sync(compute()) == 42

    def test_propagates_exception(self):
        async def fail():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_sync(fail())

    def test_refuses_inside_running_loop(self):
        async def outer():
            async def inner():
                return 1

            with pytest.raises(RuntimeError, match="running event loop"):
                run_sync(inner())

        asyncio.run(outer())


class TestLoopThread:
    def test_call_and_stop(self):
        loop = LoopThread()

        async def compute():
            return "done"

        assert loop.call(compute()) == "done"
        loop.stop()
        assert not loop.running

        async def late():
            return None  # pragma: no cover - never runs

        with pytest.raises(RuntimeError):
            loop.call(late())

    def test_stop_is_idempotent(self):
        loop = LoopThread()
        loop.stop()
        loop.stop()


class TestKVStoreFacade:
    def test_put_get_multi(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(2))
            await cluster.start()
            store = KVStore(cluster, client_id="c1")
            await store.connect()
            try:
                await store.put("user:7", "ada")
                assert await store.get("user:7") == "ada"
                assert await store.get("missing") is None
                await store.multi_put({"a": 1, "b": 2, "c": 3, "d": 4})
                values = await store.multi_get(["a", "b", "c", "d"])
                assert values == {"a": 1, "b": 2, "c": 3, "d": 4}
                verdict = store.check()
                assert verdict.all_atomic, verdict.summary()
                # multi-ops submitted in one tick coalesce into shared rounds.
                assert store.batch_stats().largest >= 2
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_concurrent_clients_stay_atomic_per_key(self):
        import time

        from repro.kvstore import KVHistoryRecorder, check_per_key_atomicity

        async def scenario():
            shard_map = ShardMap(2, readers=3, writers=3)
            cluster = AsyncKVCluster(shard_map)
            await cluster.start()
            base = time.monotonic()
            # One recorder shared by all stores: contention on "shared" is
            # only checkable over the combined history of all clients.
            recorder = KVHistoryRecorder(lambda: time.monotonic() - base)
            stores = []
            try:
                for index in range(3):
                    store = KVStore(cluster, client_id=f"c{index + 1}",
                                    recorder=recorder)
                    await store.connect()
                    stores.append(store)

                async def hammer(store: KVStore, index: int) -> None:
                    for i in range(6):
                        await store.put("shared", f"v-{index}-{i}")
                        await store.get("shared")

                await asyncio.gather(*(hammer(s, i) for i, s in enumerate(stores)))
                verdict = check_per_key_atomicity(recorder.histories())
                assert verdict.all_atomic, verdict.summary()
            finally:
                for store in stores:
                    await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_oversized_value_raises_instead_of_hanging(self):
        from repro.asyncio_net.codec import MAX_FRAME_BYTES, FrameError

        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            store = KVStore(cluster, client_id="c1")
            await store.connect()
            try:
                huge = "x" * (MAX_FRAME_BYTES + 1)
                with pytest.raises(FrameError):
                    await asyncio.wait_for(store.put("k", huge), timeout=5.0)
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_requires_connect(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            store = KVStore(cluster)
            try:
                with pytest.raises(RuntimeError, match="not connected"):
                    await store.put("k", "v")
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestSyncKVStore:
    def test_sync_wrapper_round_trip(self):
        with SyncKVStore(num_shards=2) as store:
            store.put("k1", "hello")
            assert store.get("k1") == "hello"
            store.multi_put({"x": "1", "y": "2"})
            assert store.multi_get(["x", "y"]) == {"x": "1", "y": "2"}
            verdict = store.check()
            assert verdict.all_atomic
        # close() is idempotent and the context manager already closed it.
        store.close()

    def test_sync_methods_are_plain_callables(self):
        assert not asyncio.iscoroutinefunction(SyncKVStore.put)
        assert not asyncio.iscoroutinefunction(SyncKVStore.get)
        assert not asyncio.iscoroutinefunction(SyncKVStore.multi_get)
        assert not asyncio.iscoroutinefunction(SyncKVStore.multi_put)


class TestKillRestart:
    def test_workload_survives_one_replica_kill_per_group(self):
        """A read/write workload keeps completing (and stays atomic) across a
        kill of one replica in every group, and the restarted replicas are
        folded back in by the clients' reconnect loops."""

        async def scenario():
            shard_map = ShardMap(4, num_groups=2, servers_per_shard=3,
                                 max_faults=1, readers=2, writers=2)
            cluster = AsyncKVCluster(shard_map)
            await cluster.start()
            stores = []
            try:
                for index in range(2):
                    store = KVStore(cluster, client_id=f"c{index + 1}")
                    await store.connect()
                    stores.append(store)

                async def phase(tag: str) -> None:
                    async def hammer(store: KVStore, index: int) -> None:
                        for i in range(5):
                            await store.put(f"k{index}-{i}", f"{tag}-{i}")
                            assert await store.get(f"k{index}-{i}") == f"{tag}-{i}"

                    await asyncio.gather(*(hammer(s, i) for i, s in enumerate(stores)))

                await phase("before")
                victims = [group.servers[0]
                           for group in shard_map.groups.values()]
                for victim in victims:
                    await cluster.kill_server(victim)
                served_at_kill = {
                    v: cluster.replicas[v].requests_served for v in victims
                }
                await phase("during")  # quorums of S - t carry the load
                for victim in victims:
                    await cluster.restart_server(victim)
                await asyncio.sleep(0.2)  # let the redial loops land
                await phase("after")
                # The restarted replicas are serving traffic again.
                for victim in victims:
                    assert cluster.replicas[victim].requests_served > \
                        served_at_kill[victim]
                for store in stores:
                    verdict = store.check()
                    assert verdict.all_atomic, verdict.summary()
            finally:
                for store in stores:
                    await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_restart_is_a_no_op_for_a_running_replica(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            try:
                server_id = next(iter(cluster.replicas))
                port = cluster.replicas[server_id].port
                await cluster.restart_server(server_id)
                assert cluster.replicas[server_id].port == port
                assert cluster.replicas[server_id].running
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestWorkloadRunner:
    def test_closed_loop_run_is_atomic_and_batched(self):
        workload = generate_workload(num_clients=2, ops_per_client=10, num_keys=8,
                                     seed=4, pipeline_depth=4)
        result = run_asyncio_kv_workload(workload, num_shards=2, max_batch=8)
        assert result.backend == "asyncio"
        assert result.completed_ops == workload.total_operations()
        assert result.check().all_atomic
        assert result.messages_sent > 0
        assert result.batch_stats.rounds > 0
        assert result.duration > 0
