"""Tests for the exhaustive checker and the top-level atomicity API.

The crucial test here is the *cross-validation property*: on randomly
generated small histories the polynomial cluster checker and the exhaustive
Wing-Gong search must agree.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.atomicity import assert_atomic, check_atomicity
from repro.consistency.history import History
from repro.consistency.register_checker import check_register_atomicity
from repro.consistency.wgl import check_linearizable_exhaustive
from repro.core.errors import AtomicityViolation
from repro.core.operations import Operation, OpKind
from repro.core.timestamps import BOTTOM_TAG, Tag


def _payload(tag):
    """Reads of the initial value must carry the initial payload (None)."""
    return None if tag == BOTTOM_TAG else f"val-{tag}"


def write(op_id, client, start, finish, tag):
    return Operation(op_id, client, OpKind.WRITE, start, finish, _payload(tag), tag)


def read(op_id, client, start, finish, tag):
    return Operation(op_id, client, OpKind.READ, start, finish, _payload(tag), tag)


class TestWGL:
    def test_simple_atomic(self):
        history = History(
            [write("w", "w1", 0, 1, Tag(1, "w1")), read("r", "r1", 2, 3, Tag(1, "w1"))]
        )
        result = check_linearizable_exhaustive(history, initial_value=None)
        assert result.atomic
        assert [op.op_id for op in result.linearization] == ["w", "r"]

    def test_simple_violation(self):
        history = History(
            [
                write("a", "w1", 0, 1, Tag(1, "w1")),
                write("b", "w2", 2, 3, Tag(2, "w2")),
                read("r", "r1", 4, 5, Tag(1, "w1")),
            ]
        )
        assert not check_linearizable_exhaustive(history).atomic

    def test_pending_write_optional(self):
        pending = Operation(
            "w", "w1", OpKind.WRITE, 0, None, _payload(Tag(1, "w1")), Tag(1, "w1")
        )
        unread = History([pending, read("r", "r1", 5, 6, BOTTOM_TAG)])
        assert check_linearizable_exhaustive(unread).atomic
        observed = History([pending, read("r", "r1", 5, 6, Tag(1, "w1"))])
        assert check_linearizable_exhaustive(observed).atomic

    def test_state_cap(self):
        ops = [write(f"w{i}", "w1", i * 2, i * 2 + 1, Tag(i + 1, "w1")) for i in range(30)]
        with pytest.raises(RuntimeError):
            check_linearizable_exhaustive(History(ops), max_states=10)

    def test_duplicate_values_handled(self):
        # Two writes with equal payloads but different tags; the WGL checker
        # compares payloads, so both orders work.
        history = History(
            [
                Operation("a", "w1", OpKind.WRITE, 0, 1, "same", Tag(1, "w1")),
                Operation("b", "w2", OpKind.WRITE, 2, 3, "same", Tag(2, "w2")),
                Operation("r", "r1", OpKind.READ, 4, 5, "same", Tag(2, "w2")),
            ]
        )
        assert check_linearizable_exhaustive(history).atomic


class TestDispatcher:
    def test_uses_cluster_checker_with_tags(self):
        history = History(
            [write("w", "w1", 0, 1, Tag(1, "w1")), read("r", "r1", 2, 3, Tag(1, "w1"))]
        )
        result = check_atomicity(history)
        assert result.atomic and result.method == "cluster"

    def test_falls_back_to_exhaustive_without_tags(self):
        history = History(
            [
                Operation("w", "w1", OpKind.WRITE, 0, 1, "x", None),
                Operation("r", "r1", OpKind.READ, 2, 3, "x", None),
            ]
        )
        result = check_atomicity(history)
        assert result.atomic and result.method == "exhaustive"

    def test_force_exhaustive(self):
        history = History([write("w", "w1", 0, 1, Tag(1, "w1"))])
        assert check_atomicity(history, force_exhaustive=True).method == "exhaustive"

    def test_rejects_non_well_formed(self):
        history = History(
            [write("a", "w1", 0, 10, Tag(1, "w1")), write("b", "w1", 1, 2, Tag(2, "w1"))]
        )
        with pytest.raises(ValueError):
            check_atomicity(history)

    def test_assert_atomic_raises_with_witness(self):
        history = History(
            [
                write("a", "w1", 0, 1, Tag(1, "w1")),
                write("b", "w2", 2, 3, Tag(2, "w2")),
                read("r", "r1", 4, 5, Tag(1, "w1")),
            ]
        )
        with pytest.raises(AtomicityViolation) as excinfo:
            assert_atomic(history)
        assert excinfo.value.witness is not None

    def test_assert_atomic_passes(self):
        history = History([write("w", "w1", 0, 1, Tag(1, "w1"))])
        assert assert_atomic(history).atomic


# ---------------------------------------------------------------------------
# Cross-validation: the polynomial checker agrees with the exhaustive search
# on randomly generated small histories.
# ---------------------------------------------------------------------------

_intervals = st.tuples(
    st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=8)
)


@st.composite
def small_histories(draw):
    """Random well-formed histories with <= 3 writes and <= 4 reads."""
    num_writes = draw(st.integers(min_value=1, max_value=3))
    num_reads = draw(st.integers(min_value=1, max_value=4))
    tags = [Tag(i + 1, f"w{(i % 2) + 1}") for i in range(num_writes)]
    operations = []
    # Writers: each write on its own client, sequential per client.
    client_clock = {}
    for i, tag in enumerate(tags):
        client = f"w{(i % 2) + 1}"
        start_offset, duration = draw(_intervals)
        start = client_clock.get(client, 0) + start_offset
        finish = start + duration
        client_clock[client] = finish + 1
        operations.append(write(f"wr{i}", client, start, finish, tag))
    reader_clock = {}
    for j in range(num_reads):
        client = f"r{(j % 2) + 1}"
        start_offset, duration = draw(_intervals)
        start = reader_clock.get(client, 0) + start_offset
        finish = start + duration
        reader_clock[client] = finish + 1
        tag = draw(st.sampled_from([BOTTOM_TAG] + tags))
        operations.append(read(f"rd{j}", client, start, finish, tag))
    return History(operations)


class TestCheckerEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(small_histories())
    def test_cluster_matches_exhaustive(self, history):
        cluster = check_register_atomicity(history)
        exhaustive = check_linearizable_exhaustive(history)
        assert cluster.atomic == exhaustive.atomic
