"""Unit tests for the observability layer: events, metrics, trace trees.

The integration paths (engines emitting through real runs on both backends)
are covered in ``test_kvstore_engine.py`` and ``test_cli.py``; here the
pieces are tested in isolation: histogram math, registry aggregation, the
event -> metric translation, the snapshot schema check, and span-tree
reconstruction from synthetic event streams.
"""

from __future__ import annotations

import json

import pytest

from repro.observe import (
    BATCH_CUT,
    FRAME_SENT,
    NULL_OBSERVER,
    OP_COMPLETED,
    OP_INVOKED,
    ROUND_CLOSED,
    ROUND_OPENED,
    SUB_SERVED,
    TIMER_ARMED,
    TIMER_FIRED,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    ObserverHub,
    TraceCollector,
    TraceEvent,
    validate_metrics_snapshot,
)


class TestHistogram:
    def test_empty_histogram_reports_zeroes(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        assert hist.as_dict()["p99"] == 0.0

    def test_percentiles_clamp_to_observed_range(self):
        hist = Histogram()
        for value in (0.01, 0.02, 0.03, 0.04):
            hist.observe(value)
        assert 0.01 <= hist.percentile(50) <= 0.04
        assert 0.01 <= hist.percentile(99) <= 0.04
        assert hist.minimum == 0.01 and hist.maximum == 0.04

    def test_single_observation_pins_every_percentile(self):
        hist = Histogram()
        hist.observe(0.5)
        for p in (0, 50, 95, 99, 100):
            assert hist.percentile(p) == 0.5

    def test_merge_equals_combined_observation(self):
        left, right, combined = Histogram(), Histogram(), Histogram()
        for i, value in enumerate(v * 0.003 for v in range(1, 21)):
            (left if i % 2 else right).observe(value)
            combined.observe(value)
        left.merge(right)
        assert left.counts == combined.counts
        assert left.count == combined.count
        assert left.total == pytest.approx(combined.total)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(bounds=(1.0, 2.0)))

    def test_overflow_values_land_in_the_final_slot(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(99.0)
        assert hist.counts == [0, 0, 1]
        assert hist.percentile(50) == 99.0  # clamped to the observed max


class TestMetricsRegistry:
    def test_snapshot_sums_counters_across_components(self):
        registry = MetricsRegistry()
        registry.counter("client", "c1", "frames_sent", 3)
        registry.counter("client", "c2", "frames_sent", 4)
        registry.counter("proxy", "p1", "frames_sent", 5)
        snapshot = registry.snapshot()
        assert snapshot["client"]["counters"]["frames_sent"] == 7
        assert snapshot["proxy"]["counters"]["frames_sent"] == 5
        assert registry.counter_value("client", "frames_sent") == 7

    def test_snapshot_merges_histograms_across_components(self):
        registry = MetricsRegistry()
        registry.observe("client", "c1", "op_latency", 0.01)
        registry.observe("client", "c2", "op_latency", 0.03)
        hist = registry.snapshot()["client"]["histograms"]["op_latency"]
        assert hist["count"] == 2
        assert hist["mean"] == pytest.approx(0.02)

    def test_declared_counters_survive_at_zero(self):
        registry = MetricsRegistry()
        registry.declare_counter("replica", "s1", "stale_bounces")
        assert registry.snapshot()["replica"]["counters"]["stale_bounces"] == 0

    def test_registry_merge_folds_series(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("client", "c1", "ops_invoked", 2)
        right.counter("client", "c1", "ops_invoked", 3)
        right.observe("client", "c1", "op_latency", 0.5)
        left.merge(right)
        snapshot = left.snapshot()
        assert snapshot["client"]["counters"]["ops_invoked"] == 5
        assert snapshot["client"]["histograms"]["op_latency"]["count"] == 1

    def test_gauges_stay_per_component(self):
        registry = MetricsRegistry()
        registry.gauge("proxy", "p1", "queue_depth", 7)
        assert registry.snapshot()["proxy"]["gauges"]["p1.queue_depth"] == 7


def _event(kind, tier="client", component="c1", ts=0.0, **kwargs):
    attrs = kwargs.pop("attrs", {})
    return TraceEvent(ts=ts, tier=tier, component=component, kind=kind,
                      attrs=attrs, **kwargs)


class TestMetricsObserver:
    def test_op_latency_measured_from_event_timestamps(self):
        observer = MetricsObserver()
        observer.handle(_event(OP_INVOKED, ts=1.0, op_id="op1"))
        observer.handle(_event(OP_COMPLETED, ts=3.5, op_id="op1"))
        hist = observer.registry.snapshot()["client"]["histograms"]["op_latency"]
        assert hist["count"] == 1
        assert hist["mean"] == pytest.approx(2.5)

    def test_proxy_round_latency_uses_first_open(self):
        observer = MetricsObserver()
        observer.handle(_event(ROUND_OPENED, tier="proxy", component="p1",
                               ts=1.0, op_id="op1"))
        # A replayed round re-opens; latency still spans from the first open.
        observer.handle(_event(ROUND_OPENED, tier="proxy", component="p1",
                               ts=2.0, op_id="op1"))
        observer.handle(_event(ROUND_CLOSED, tier="proxy", component="p1",
                               ts=4.0, op_id="op1"))
        hist = observer.registry.snapshot()["proxy"]["histograms"]["op_latency"]
        assert hist["count"] == 1
        assert hist["mean"] == pytest.approx(3.0)

    def test_batch_cut_feeds_the_size_histogram(self):
        observer = MetricsObserver()
        observer.handle(_event(BATCH_CUT, attrs={"size": 4}))
        observer.handle(_event(BATCH_CUT, attrs={"size": 2}))
        hist = observer.registry.snapshot()["client"]["histograms"]["batch_size"]
        assert hist["count"] == 2 and hist["max"] == 4

    def test_first_event_seeds_the_full_tier_schema(self):
        # One lone frame event must still produce a schema-complete snapshot:
        # CI's schema check relies on zero-valued counters being present.
        observer = MetricsObserver()
        observer.handle(_event(FRAME_SENT))
        observer.handle(_event(SUB_SERVED, tier="replica", component="s1"))
        validate_metrics_snapshot(observer.registry.snapshot())

    def test_timer_events_count(self):
        observer = MetricsObserver()
        observer.handle(_event(TIMER_ARMED))
        observer.handle(_event(TIMER_FIRED))
        counters = observer.registry.snapshot()["client"]["counters"]
        assert counters["timers_armed"] == 1
        assert counters["timers_fired"] == 1
        assert counters["timers_cancelled"] == 0


class TestSnapshotValidation:
    def test_missing_tier_reported(self):
        with pytest.raises(ValueError, match="missing tier 'client'"):
            validate_metrics_snapshot({})

    def test_missing_counter_reported(self):
        observer = MetricsObserver()
        observer.handle(_event(FRAME_SENT))
        observer.handle(_event(SUB_SERVED, tier="replica", component="s1"))
        snapshot = observer.registry.snapshot()
        del snapshot["client"]["counters"]["stale_replays"]
        with pytest.raises(ValueError, match="stale_replays"):
            validate_metrics_snapshot(snapshot)

    def test_missing_percentile_key_reported(self):
        observer = MetricsObserver()
        observer.handle(_event(FRAME_SENT))
        observer.handle(_event(SUB_SERVED, tier="replica", component="s1"))
        snapshot = observer.registry.snapshot()
        del snapshot["client"]["histograms"]["op_latency"]["p99"]
        with pytest.raises(ValueError, match="p99"):
            validate_metrics_snapshot(snapshot)


class TestObserverHub:
    def test_scoped_observer_stamps_tier_component_and_clock(self):
        ticks = iter([1.5, 2.5])
        hub = ObserverHub(clock=lambda: next(ticks))
        collector = hub.add_sink(TraceCollector())
        observer = hub.scoped("client", "c1")
        observer.emit(OP_INVOKED, op_id="op1", trace="t1", kind="write")
        observer.emit(OP_COMPLETED, op_id="op1", trace="t1")
        events = collector.events_for("t1")
        assert [e.ts for e in events] == [1.5, 2.5]
        assert events[0].tier == "client" and events[0].component == "c1"
        assert events[0].attrs == {"kind": "write"}

    def test_null_observer_swallows_everything(self):
        NULL_OBSERVER.emit(OP_INVOKED, op_id="x", kind="write", anything=1)

    def test_duplicate_sinks_register_once(self):
        hub = ObserverHub()
        sink = TraceCollector()
        hub.add_sink(sink)
        hub.add_sink(sink)
        hub.scoped("client", "c1").emit(OP_INVOKED, op_id="o", trace="t")
        assert len(sink.events_for("t")) == 1


def _feed(collector, rows):
    for ts, tier, component, kind in rows:
        collector.handle(TraceEvent(ts=ts, tier=tier, component=component,
                                    kind=kind, op_id="op1", trace="t1"))


class TestTraceCollector:
    def test_untraced_events_are_ignored(self):
        collector = TraceCollector()
        collector.handle(_event(TIMER_ARMED))  # no trace id
        assert collector.trace_ids() == []
        assert collector.span_tree("missing") is None

    def test_span_tree_stitches_client_proxy_replica(self):
        collector = TraceCollector()
        _feed(collector, [
            (0.0, "client", "c1", OP_INVOKED),
            (1.0, "proxy", "p1", ROUND_OPENED),
            (2.0, "replica", "s1", SUB_SERVED),
            (2.0, "replica", "s2", SUB_SERVED),
            (3.0, "proxy", "p1", ROUND_CLOSED),
            (4.0, "client", "c1", OP_COMPLETED),
        ])
        tree = collector.span_tree("t1")
        root = tree["root"]
        assert root["tier"] == "client"
        assert root["start"] == 0.0 and root["end"] == 4.0
        (proxy_node,) = root["children"]
        assert proxy_node["tier"] == "proxy"
        assert proxy_node["start"] == 1.0 and proxy_node["end"] == 3.0
        replicas = {child["component"] for child in proxy_node["children"]}
        assert replicas == {"s1", "s2"}
        assert collector.tiers_for("t1") == ["client", "proxy", "replica"]

    def test_direct_trace_skips_the_proxy_tier(self):
        collector = TraceCollector()
        _feed(collector, [
            (0.0, "client", "c1", OP_INVOKED),
            (1.0, "replica", "s1", SUB_SERVED),
            (2.0, "client", "c1", OP_COMPLETED),
        ])
        tree = collector.span_tree("t1")
        (child,) = tree["root"]["children"]
        assert child["tier"] == "replica"

    def test_dump_writes_json_and_counts_traces(self, tmp_path):
        collector = TraceCollector()
        _feed(collector, [(0.0, "client", "c1", OP_INVOKED)])
        path = tmp_path / "trace.json"
        assert collector.dump(str(path)) == 1
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["traces"][0]["trace"] == "t1"

    def test_format_is_assertion_friendly(self):
        collector = TraceCollector()
        assert "no traces" in collector.format()
        _feed(collector, [
            (0.0, "client", "c1", OP_INVOKED),
            (1.0, "replica", "s1", SUB_SERVED),
        ])
        text = collector.format()
        assert "trace t1:" in text
        assert "client/c1" in text and "replica/s1" in text
