"""Property-based round-trip tests for the asyncio wire codec.

Every message the transport can carry -- including the kv store's batch
frames -- must survive ``encode -> frame -> decode`` bit-exactly, because the
asyncio backend and the simulator share protocol logic that assumes payloads
are preserved.  Hypothesis generates adversarial senders, kinds and payload
trees (anything JSON can carry).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asyncio_net.codec import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_batch_frame,
    decode_drain_install_frame,
    decode_drain_transfer_frame,
    decode_message,
    decode_proxy_ack_frame,
    decode_proxy_frame,
    decode_view_push_frame,
    encode_batch_frame,
    encode_drain_install_frame,
    encode_drain_transfer_frame,
    encode_message,
    encode_proxy_ack_frame,
    encode_proxy_frame,
    encode_view_push_frame,
)
from repro.sim.messages import (
    BATCH_ACK_KIND,
    BATCH_KIND,
    PROXY_ACK_KIND,
    PROXY_KIND,
    VIEW_PUSH_KIND,
    Message,
    ProxySubReply,
    ProxySubRequest,
    SubRequest,
    make_batch,
    make_batch_ack,
    make_proxy_ack,
    make_proxy_request,
    make_view_push,
    unpack_batch,
    unpack_batch_ack,
    unpack_proxy_ack,
    unpack_proxy_request,
    unpack_view_push,
)

_codec = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# JSON-safe payload values: what the protocols put into message payloads.
# Floats are restricted to finite values (JSON has no NaN/Infinity) and ints
# to the range JSON interoperates with.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)
_payloads = st.dictionaries(st.text(max_size=12), _json_values, max_size=5)
_ids = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="-_:"),
    min_size=1,
    max_size=12,
)


def _messages(kinds=_ids):
    return st.builds(
        Message,
        sender=_ids,
        receiver=_ids,
        kind=kinds,
        payload=_payloads,
        op_id=st.one_of(st.none(), _ids),
        round_trip=st.integers(min_value=0, max_value=9),
        trace=st.one_of(st.none(), _ids),
    )


def _assert_same_message(left: Message, right: Message) -> None:
    assert left.sender == right.sender
    assert left.receiver == right.receiver
    assert left.kind == right.kind
    assert left.payload == right.payload
    assert left.op_id == right.op_id
    assert left.round_trip == right.round_trip
    assert left.trace == right.trace


def _scrub_trace(value):
    """Drop every ``"trace"`` key, emulating a frame from a peer that
    predates the trace-context field (cross-version tolerance)."""
    if isinstance(value, dict):
        return {
            key: _scrub_trace(item)
            for key, item in value.items()
            if key != "trace"
        }
    if isinstance(value, list):
        return [_scrub_trace(item) for item in value]
    return value


class TestMessageFrames:
    @_codec
    @given(message=_messages())
    def test_encode_decode_round_trip(self, message):
        encoded = encode_message(message)
        decoded = decode_message(encoded[4:])
        _assert_same_message(message, decoded)

    @_codec
    @given(message=_messages())
    def test_length_prefix_matches_body(self, message):
        encoded = encode_message(message)
        assert int.from_bytes(encoded[:4], "big") == len(encoded) - 4

    def test_oversized_frame_rejected(self):
        huge = Message("a", "b", "blob", {"data": "x" * (MAX_FRAME_BYTES + 1)})
        with pytest.raises(FrameError):
            encode_message(huge)

    @_codec
    @given(message=_messages())
    def test_traceless_frames_stay_byte_identical(self, message):
        # A message without a trace id must encode exactly as it did before
        # the field existed: no "trace" key on the wire at all.
        bare = Message(
            message.sender, message.receiver, message.kind, message.payload,
            op_id=message.op_id, round_trip=message.round_trip,
        )
        # Parse rather than substring-match: "trace" is a legal kind/payload
        # *value*; only the top-level field must stay off the wire.
        assert "trace" not in json.loads(encode_message(bare)[4:])

    @_codec
    @given(message=_messages())
    def test_legacy_frame_without_trace_decodes(self, message):
        # Frames from peers that predate the trace field decode cleanly:
        # the trace comes back None, everything else bit-exact.
        raw = encode_message(message)[4:]
        legacy = json.dumps(_scrub_trace(json.loads(raw))).encode("utf-8")
        decoded = decode_message(legacy)
        assert decoded.trace is None
        assert decoded.sender == message.sender
        assert decoded.kind == message.kind
        assert decoded.payload == message.payload
        assert decoded.op_id == message.op_id


#: Shard/epoch routing tags as the placement layer produces them.
_sub_requests = st.builds(
    SubRequest,
    key=_ids,
    message=_messages(),
    shard=st.one_of(st.none(), _ids),
    epoch=st.integers(min_value=0, max_value=2**31),
)


class TestBatchFrames:
    @_codec
    @given(subs=st.lists(st.tuples(_ids, _messages()), min_size=1, max_size=5))
    def test_batch_round_trip(self, subs):
        batch = make_batch("client", "server", subs)
        assert batch.kind == BATCH_KIND
        recovered = unpack_batch(batch)
        assert len(recovered) == len(subs)
        for (key, original), sub in zip(subs, recovered):
            assert key == sub.key
            # Bare (key, message) pairs coerce to untagged sub-requests.
            assert sub.shard is None and sub.epoch == 0
            restored = sub.message
            assert restored.receiver == "server"
            assert restored.sender == original.sender
            assert restored.kind == original.kind
            assert restored.payload == original.payload
            assert restored.op_id == original.op_id
            assert restored.round_trip == original.round_trip

    @_codec
    @given(subs=st.lists(st.tuples(_ids, _messages()), min_size=1, max_size=5))
    def test_batch_survives_the_wire(self, subs):
        encoded = encode_batch_frame("client", "server", subs)
        recovered = decode_batch_frame(encoded[4:])
        assert [sub.key for sub in recovered] == [key for key, _ in subs]
        for (_, original), sub in zip(subs, recovered):
            assert sub.message.payload == original.payload

    @_codec
    @given(subs=st.lists(_sub_requests, min_size=1, max_size=5))
    def test_epoch_tags_round_trip_sim_codec(self, subs):
        # The (shard, epoch) fence must survive pack/unpack bit-exactly:
        # a mangled tag would either bounce a fresh request or -- far worse
        # -- let a stale one through during a live resize.
        recovered = unpack_batch(make_batch("client", "server", subs))
        assert len(recovered) == len(subs)
        for original, restored in zip(subs, recovered):
            assert restored.key == original.key
            assert restored.shard == original.shard
            if original.shard is not None:
                assert restored.epoch == original.epoch
            assert restored.message.payload == original.message.payload
            assert restored.message.op_id == original.message.op_id
            assert restored.message.trace == original.message.trace

    @_codec
    @given(subs=st.lists(_sub_requests, min_size=1, max_size=5))
    def test_epoch_tags_round_trip_wire_codec(self, subs):
        encoded = encode_batch_frame("client", "server", subs)
        recovered = decode_batch_frame(encoded[4:])
        for original, restored in zip(subs, recovered):
            assert restored.shard == original.shard
            if original.shard is not None:
                assert restored.epoch == original.epoch
            assert restored.message.payload == original.message.payload
            assert restored.message.trace == original.message.trace

    @_codec
    @given(
        subs=st.lists(st.tuples(_ids, _messages()), min_size=1, max_size=4),
        missing=st.sets(st.integers(min_value=0, max_value=3)),
    )
    def test_batch_ack_round_trip_preserves_gaps(self, subs, missing):
        request = make_batch("client", "server", subs)
        replies = [
            (key, None if index in missing else sub.reply("ack", {"i": index}))
            for index, (key, sub) in enumerate(subs)
        ]
        ack = make_batch_ack(request, replies)
        assert ack.kind == BATCH_ACK_KIND
        # The ack also survives the wire codec.
        recovered = unpack_batch_ack(decode_message(encode_message(ack)[4:]))
        assert len(recovered) == len(subs)
        for index, (_, restored) in enumerate(recovered):
            if index in missing and index < len(subs):
                assert restored is None
            else:
                assert restored is not None
                assert restored.payload == {"i": index}

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            make_batch("client", "server", [])

    def test_unpack_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            unpack_batch(Message("a", "b", "query"))
        with pytest.raises(ValueError):
            unpack_batch_ack(Message("a", "b", "query"))


#: Forwarded rounds as the client drivers produce them for the ingress tier.
_proxy_subs = st.builds(
    ProxySubRequest,
    key=_ids,
    op_kind=st.sampled_from(["read", "write"]),
    kind=_ids,
    payload=_payloads,
    op_id=_ids,
    round_trip=st.integers(min_value=0, max_value=9),
    wait_for=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
    per_server=st.one_of(
        st.none(), st.dictionaries(_ids, _payloads, min_size=1, max_size=3)
    ),
    trace=st.one_of(st.none(), _ids),
)

#: Completed rounds as the proxy packs them: the quorum's replica replies.
_proxy_replies = st.builds(
    ProxySubReply,
    op_id=_ids,
    round_trip=st.integers(min_value=0, max_value=9),
    replies=st.tuples(*[_messages()] * 2) | st.tuples(_messages()) | st.just(()),
    error=st.one_of(st.none(), st.text(max_size=30)),
)


class TestProxyFrames:
    @_codec
    @given(subs=st.lists(_proxy_subs, min_size=1, max_size=5))
    def test_proxy_request_round_trip_sim_codec(self, subs):
        frame = make_proxy_request("client", "proxy", subs)
        assert frame.kind == PROXY_KIND
        assert frame.sender == "client"  # the identity proxies forward
        recovered = unpack_proxy_request(frame)
        assert recovered == subs  # NamedTuples: field-exact equality

    @_codec
    @given(subs=st.lists(_proxy_subs, min_size=1, max_size=5))
    def test_proxy_request_survives_the_wire(self, subs):
        encoded = encode_proxy_frame("client", "proxy", subs)
        recovered = decode_proxy_frame(encoded[4:])
        for original, restored in zip(subs, recovered):
            assert restored.key == original.key
            assert restored.op_kind == original.op_kind
            assert restored.kind == original.kind
            assert restored.payload == original.payload
            assert restored.op_id == original.op_id
            assert restored.round_trip == original.round_trip
            # The ack threshold and per-server payloads drive quorum safety;
            # a lossy round-trip here would corrupt routing silently.
            assert restored.wait_for == original.wait_for
            assert restored.per_server == original.per_server
            assert restored.trace == original.trace

    @_codec
    @given(subs=st.lists(_proxy_subs, min_size=1, max_size=5))
    def test_legacy_proxy_frame_without_trace_decodes(self, subs):
        raw = encode_proxy_frame("client", "proxy", subs)[4:]
        legacy = json.dumps(_scrub_trace(json.loads(raw))).encode("utf-8")
        recovered = decode_proxy_frame(legacy)
        for original, restored in zip(subs, recovered):
            assert restored.trace is None
            assert restored.key == original.key
            assert restored.payload == original.payload
            assert restored.op_id == original.op_id

    @_codec
    @given(sub_replies=st.lists(_proxy_replies, min_size=1, max_size=4))
    def test_proxy_ack_round_trip_sim_codec(self, sub_replies):
        ack = make_proxy_ack("proxy", "client", sub_replies)
        assert ack.kind == PROXY_ACK_KIND
        recovered = unpack_proxy_ack(ack)
        assert len(recovered) == len(sub_replies)
        for original, restored in zip(sub_replies, recovered):
            assert restored.op_id == original.op_id
            assert restored.round_trip == original.round_trip
            assert restored.error == original.error
            assert len(restored.replies) == len(original.replies)
            for sent, back in zip(original.replies, restored.replies):
                # Replica identity and payload are what the protocols read.
                assert back.sender == sent.sender
                assert back.kind == sent.kind
                assert back.payload == sent.payload
                # Routing identity is re-stamped from the sub-reply, so the
                # proxy's attempt-scoped internal ids can never leak out.
                assert back.op_id == original.op_id
                assert back.receiver == "client"

    @_codec
    @given(sub_replies=st.lists(_proxy_replies, min_size=1, max_size=4))
    def test_proxy_ack_survives_the_wire(self, sub_replies):
        encoded = encode_proxy_ack_frame("proxy", "client", sub_replies)
        recovered = decode_proxy_ack_frame(encoded[4:])
        for original, restored in zip(sub_replies, recovered):
            assert restored.op_id == original.op_id
            assert restored.error == original.error
            assert [r.payload for r in restored.replies] == \
                [r.payload for r in original.replies]

    def test_empty_proxy_frames_rejected(self):
        with pytest.raises(ValueError):
            make_proxy_request("client", "proxy", [])
        with pytest.raises(ValueError):
            make_proxy_ack("proxy", "client", [])

    def test_unpack_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            unpack_proxy_request(Message("a", "b", "query"))
        with pytest.raises(ValueError):
            unpack_proxy_ack(Message("a", "b", "query"))


#: Shard-map views as the control plane snapshots them for a push
#: (``ShardMap.view_snapshot``): routes keyed by exactly the ring's shards.
@st.composite
def _view_snapshots(draw):
    shard_ids = draw(st.lists(_ids, min_size=1, max_size=5, unique=True))
    routes = {
        shard_id: {
            "epoch": draw(st.integers(min_value=1, max_value=2**31)),
            "group": draw(_ids),
            "servers": draw(st.lists(_ids, min_size=1, max_size=4)),
            "quorum": draw(st.integers(min_value=1, max_value=4)),
        }
        for shard_id in shard_ids
    }
    return {
        "ring_epoch": draw(st.integers(min_value=1, max_value=2**31)),
        "virtual_nodes": draw(st.integers(min_value=1, max_value=128)),
        "shard_ids": shard_ids,
        "routes": routes,
    }


class TestViewPushFrames:
    @_codec
    @given(view=_view_snapshots())
    def test_view_push_round_trip_sim_codec(self, view):
        frame = make_view_push("control-plane", "p1", view)
        assert frame.kind == VIEW_PUSH_KIND
        # The routing state must survive bit-exactly: a mangled epoch would
        # either re-bounce fresh rounds or let stale ones through a fence.
        assert unpack_view_push(frame) == view

    @_codec
    @given(view=_view_snapshots())
    def test_view_push_survives_the_wire(self, view):
        encoded = encode_view_push_frame("control-plane", "p1", view)
        assert decode_view_push_frame(encoded[4:]) == view

    def test_incomplete_view_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            make_view_push("ctl", "p1", {"ring_epoch": 2})

    def test_unpack_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            unpack_view_push(Message("a", "b", "query"))


#: Register-state blobs as the drain carries them: per-key lists of JSON
#: dicts, one blob per donor replica the key was exported from.
_state_blobs = st.dictionaries(
    _ids,
    st.lists(st.dictionaries(st.text(max_size=8), _scalars, max_size=3),
             min_size=1, max_size=3),
    max_size=4,
)


class TestDrainFrames:
    @_codec
    @given(mig=_ids, token=_ids, shard=_ids,
           keys=st.lists(_ids, max_size=8))
    def test_drain_transfer_survives_the_wire(self, mig, token, shard, keys):
        encoded = encode_drain_transfer_frame(
            "control-plane", "g1-s1", mig, token, shard, keys
        )
        decoded = decode_drain_transfer_frame(encoded[4:])
        assert decoded["mig"] == mig
        assert decoded["token"] == token
        assert decoded["shard"] == shard
        assert decoded["keys"] == list(keys)

    @_codec
    @given(mig=_ids, token=_ids, shard=_ids,
           epoch=st.integers(min_value=1, max_value=2**31),
           keys=st.lists(_ids, max_size=8), states=_state_blobs)
    def test_drain_install_survives_the_wire(
        self, mig, token, shard, epoch, keys, states
    ):
        # The exported register blobs must survive bit-exactly: a mangled
        # timestamp or value inside a blob would corrupt the receiver's
        # absorbed state and break per-key atomicity after the cutover.
        encoded = encode_drain_install_frame(
            "control-plane", "g2-s1", mig, token, shard, epoch, keys, states
        )
        decoded = decode_drain_install_frame(encoded[4:])
        assert decoded["epoch"] == epoch
        assert decoded["keys"] == list(keys)
        assert decoded["states"] == states

    def test_unpack_wrong_kind_rejected(self):
        from repro.messages import unpack_drain_transfer

        with pytest.raises(ValueError, match="not a drain-transfer"):
            unpack_drain_transfer(Message("a", "b", "query"))

    def test_missing_field_rejected(self):
        from repro.messages import DRAIN_TRANSFER_KIND, unpack_drain_transfer

        with pytest.raises(ValueError, match="missing field"):
            unpack_drain_transfer(
                Message("a", "b", DRAIN_TRANSFER_KIND, {"mig": "m1"})
            )


#: Key sets as the lease protocol carries them (grants, invalidations and
#: releases all name at least one key).
_lease_keys = st.lists(_ids, min_size=1, max_size=8)
_lease_ttls = st.floats(min_value=0.001, max_value=1e6, allow_nan=False,
                        allow_infinity=False)


class TestLeaseFrames:
    @_codec
    @given(keys=_lease_keys, ttl=_lease_ttls)
    def test_grant_round_trip_sim_codec(self, keys, ttl):
        from repro.messages import (
            LEASE_GRANT_KIND, make_lease_grant, unpack_lease_grant,
        )

        nonces = [f"op-{i}/1" for i in range(len(keys))]
        frame = make_lease_grant("g1-s1", "p1", keys, ttl, nonces)
        assert frame.kind == LEASE_GRANT_KIND
        recovered = unpack_lease_grant(frame)
        assert recovered["keys"] == list(keys)
        assert recovered["ttl"] == ttl
        assert recovered["nonces"] == nonces

    @_codec
    @given(keys=_lease_keys, ttl=_lease_ttls)
    def test_grant_survives_the_wire(self, keys, ttl):
        from repro.asyncio_net.codec import (
            decode_lease_grant_frame, encode_lease_grant_frame,
        )

        # The ttl must survive bit-exactly: a proxy computing its
        # self-expiry point from a mangled ttl could serve a cached value
        # past the deadline the replicas unblock writers at.  The nonces
        # must survive too: a mangled nonce would make the proxy discount
        # (or worse, miscredit) the grant.
        nonces = [f"op-{i}/2" for i in range(len(keys))]
        encoded = encode_lease_grant_frame("g1-s1", "p1", keys, ttl, nonces)
        decoded = decode_lease_grant_frame(encoded[4:])
        assert decoded["keys"] == list(keys)
        assert decoded["ttl"] == ttl
        assert decoded["nonces"] == nonces

    @_codec
    @given(keys=_lease_keys)
    def test_invalidate_survives_the_wire(self, keys):
        from repro.asyncio_net.codec import (
            decode_lease_invalidate_frame, encode_lease_invalidate_frame,
        )
        from repro.messages import make_lease_invalidate, unpack_lease_invalidate

        frame = make_lease_invalidate("g1-s1", "p1", keys)
        assert unpack_lease_invalidate(frame)["keys"] == list(keys)
        encoded = encode_lease_invalidate_frame("g1-s1", "p1", keys)
        assert decode_lease_invalidate_frame(encoded[4:])["keys"] == list(keys)

    @_codec
    @given(keys=_lease_keys)
    def test_release_survives_the_wire(self, keys):
        from repro.asyncio_net.codec import (
            decode_lease_release_frame, encode_lease_release_frame,
        )
        from repro.messages import make_lease_release, unpack_lease_release

        frame = make_lease_release("p1", "g1-s1", keys)
        assert unpack_lease_release(frame)["keys"] == list(keys)
        encoded = encode_lease_release_frame("p1", "g1-s1", keys)
        assert decode_lease_release_frame(encoded[4:])["keys"] == list(keys)

    def test_empty_keys_rejected(self):
        from repro.messages import (
            make_lease_grant, make_lease_invalidate, make_lease_release,
        )

        with pytest.raises(ValueError, match="at least one key"):
            make_lease_grant("s", "p", [], 1.0, [])
        with pytest.raises(ValueError, match="at least one key"):
            make_lease_invalidate("s", "p", [])
        with pytest.raises(ValueError, match="at least one key"):
            make_lease_release("p", "s", [])

    def test_non_positive_ttl_rejected(self):
        from repro.messages import make_lease_grant

        with pytest.raises(ValueError, match="positive"):
            make_lease_grant("s", "p", ["k"], 0.0, ["n"])
        with pytest.raises(ValueError, match="positive"):
            make_lease_grant("s", "p", ["k"], -1.0, ["n"])

    def test_grant_misaligned_nonces_rejected(self):
        from repro.messages import make_lease_grant

        with pytest.raises(ValueError, match="one nonce per key"):
            make_lease_grant("s", "p", ["k1", "k2"], 1.0, ["n1"])

    def test_unpack_wrong_kind_rejected(self):
        from repro.messages import (
            unpack_lease_grant, unpack_lease_invalidate, unpack_lease_release,
        )

        for unpack in (unpack_lease_grant, unpack_lease_invalidate,
                       unpack_lease_release):
            with pytest.raises(ValueError, match="not a lease-"):
                unpack(Message("a", "b", "query"))

    def test_grant_missing_ttl_rejected(self):
        from repro.messages import LEASE_GRANT_KIND, unpack_lease_grant

        with pytest.raises(ValueError, match="missing field"):
            unpack_lease_grant(
                Message("a", "b", LEASE_GRANT_KIND, {"keys": ["k"]})
            )

    @_codec
    @given(subs=st.lists(_sub_requests, min_size=1, max_size=5))
    def test_leaseless_batches_stay_byte_identical(self, subs):
        # A batch whose subs never ask for a lease must encode exactly as
        # it did before the field existed: no "lease" key anywhere in the
        # frame (same cross-version property the trace field keeps).
        batch = make_batch(
            "client", "server", [sub._replace(lease=None) for sub in subs]
        )
        for op in json.loads(encode_message(batch)[4:])["payload"]["ops"]:
            assert "lease" not in op

    @_codec
    @given(subs=st.lists(_sub_requests, min_size=1, max_size=5))
    def test_lease_marked_subs_round_trip(self, subs):
        # The mark is the fill's nonce string; unmarked subs stay None.
        marked = [
            sub._replace(lease=f"op-{index}/7" if index % 2 == 0 else None)
            for index, sub in enumerate(subs)
        ]
        batch = make_batch("client", "server", marked)
        recovered = unpack_batch(decode_message(encode_message(batch)[4:]))
        assert [sub.lease for sub in recovered] == \
            [sub.lease for sub in marked]
