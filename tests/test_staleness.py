"""Tests for the inconsistency-quantification metrics (future-work leg)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency import check_atomicity, measure_staleness
from repro.consistency.history import History
from repro.core.operations import Operation, OpKind
from repro.core.timestamps import BOTTOM_TAG, Tag
from repro.protocols.registry import build_protocol
from repro.sim.delays import UniformDelay
from repro.sim.runtime import Simulation
from repro.util.ids import client_ids, server_ids
from repro.workloads.generators import apply_open_loop, asymmetric_write_contention, uniform_open_loop

T1 = Tag(1, "w1")
T2 = Tag(2, "w2")
T3 = Tag(3, "w1")


def write(op_id, start, finish, tag, client="w1"):
    return Operation(op_id, client, OpKind.WRITE, start, finish, str(tag), tag)


def read(op_id, start, finish, tag, client="r1"):
    return Operation(op_id, client, OpKind.READ, start, finish, str(tag), tag)


class TestStalenessMetrics:
    def test_fresh_reads(self):
        history = History([write("a", 0, 1, T1), read("r", 2, 3, T1)])
        report = measure_staleness(history)
        assert report.read_count == 1
        assert report.stale_read_count == 0
        assert report.k_atomicity() == 1
        assert report.inversions == 0

    def test_version_lag_counts_completed_newer_writes(self):
        history = History(
            [
                write("a", 0, 1, T1),
                write("b", 2, 3, T2, client="w2"),
                write("c", 4, 5, T3),
                read("r", 6, 7, T1),
            ]
        )
        report = measure_staleness(history)
        assert report.reads[0].version_lag == 2
        assert report.k_atomicity() == 3
        assert report.max_version_lag == 2
        assert report.stale_read_fraction == 1.0

    def test_time_lag_measured_from_oldest_missed_write(self):
        history = History(
            [write("a", 0, 1, T1), write("b", 2, 3, T2, client="w2"), read("r", 10, 11, T1)]
        )
        report = measure_staleness(history)
        assert report.reads[0].time_lag == pytest.approx(7.0)

    def test_concurrent_write_not_counted(self):
        # The newer write is still in progress when the read starts.
        history = History(
            [write("a", 0, 1, T1), write("b", 2, 20, T2, client="w2"), read("r", 5, 6, T1)]
        )
        report = measure_staleness(history)
        assert report.reads[0].is_fresh

    def test_reading_pending_writes_value_is_fresh(self):
        history = History(
            [write("a", 0, 1, T1), write("b", 2, None, T2, client="w2"), read("r", 5, 6, T2)]
        )
        report = measure_staleness(history)
        assert report.reads[0].is_fresh

    def test_inversions_counted(self):
        # Sequential writes; the later read (r2) observes a value that is
        # strictly older in real time than what the earlier read (r1) saw.
        history = History(
            [
                write("a", 0, 1, T1),
                write("b", 2, 3, T2, client="w2"),
                read("r1", 4, 5, T2, client="r1"),
                read("r2", 6, 7, T1, client="r2"),
                read("r3", 8, 9, T2, client="r1"),
            ]
        )
        report = measure_staleness(history)
        assert report.inversions == 1

    def test_no_inversion_for_concurrent_writes(self):
        # When the two writes are concurrent, reads may observe them in
        # either order; that is not an inversion (and the history is atomic).
        history = History(
            [
                write("a", 0, 30, T1),
                write("b", 0, 30, T2, client="w2"),
                read("r1", 1, 2, T2, client="r1"),
                read("r2", 3, 4, T1, client="r2"),
            ]
        )
        assert measure_staleness(history).inversions == 0

    def test_bottom_reads_before_any_write(self):
        history = History([read("r", 0, 1, BOTTOM_TAG), write("a", 2, 3, T1)])
        report = measure_staleness(history)
        assert report.reads[0].is_fresh

    def test_empty_history(self):
        report = measure_staleness(History())
        assert report.read_count == 0
        assert report.k_atomicity() == 1
        assert report.stale_read_fraction == 0.0
        assert "0 reads" in report.summary()

    def test_incomplete_reads_skipped(self):
        history = History([write("a", 0, 1, T1), read("r", 2, None, None)])
        assert measure_staleness(history).read_count == 0


class TestStalenessOnProtocols:
    def _run(self, key, workload_kind="asymmetric", servers=5, seed=0):
        protocol = build_protocol(key, server_ids(servers), 1, readers=2, writers=2)
        simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=seed))
        writers = client_ids("w", protocol.writers)
        readers = client_ids("r", 2)
        if workload_kind == "asymmetric":
            workload = asymmetric_write_contention(writers, readers, rounds=2)
        else:
            workload = uniform_open_loop(writers, readers, 3, 5, 100.0, seed=seed)
        apply_open_loop(simulation, workload)
        result = simulation.run()
        return result.history

    def test_atomic_protocol_has_zero_staleness(self):
        history = self._run("fast-read-mwmr", servers=7)
        verdict = check_atomicity(history)
        report = measure_staleness(history)
        assert verdict.atomic
        assert report.stale_read_count == 0
        assert report.inversions == 0

    def test_fast_write_candidate_has_measurable_staleness(self):
        history = self._run("fast-write-attempt")
        verdict = check_atomicity(history)
        report = measure_staleness(history)
        assert not verdict.atomic
        assert report.stale_read_count > 0
        assert report.k_atomicity() >= 2

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_staleness_consistent_with_checker_for_correct_protocol(self, seed):
        history = self._run("abd-mwmr", workload_kind="uniform", seed=seed)
        assert check_atomicity(history).atomic
        report = measure_staleness(history)
        assert report.stale_read_count == 0
