"""Tests for the fast-read bound (Fig. 9) and the Table 1 generators."""

from __future__ import annotations

import pytest

from repro.core.conditions import SystemParameters, fast_read_bound
from repro.core.errors import ConfigurationError
from repro.core.fastness import DesignPoint
from repro.theory.design_space import (
    empirical_table,
    format_table,
    theoretical_table,
)
from repro.theory.fast_read_bound import (
    boundary_sweep,
    build_fig9_scenario,
    fast_read_blocks,
    run_fig9_experiment,
)
from repro.util.ids import server_ids


class TestBlocks:
    def test_partition_sizes(self):
        blocks = fast_read_blocks(server_ids(7), 2)
        assert [len(b) for b in blocks] == [2, 2, 2, 1]
        assert sum(len(b) for b in blocks) == 7

    def test_partition_requires_faults(self):
        with pytest.raises(ConfigurationError):
            fast_read_blocks(server_ids(4), 0)


class TestScenario:
    def test_applicable_exactly_when_bound_violated(self):
        for servers, faults, readers in [
            (4, 1, 2), (5, 1, 2), (6, 1, 3), (6, 1, 4), (8, 2, 2), (9, 2, 2)
        ]:
            scenario = build_fig9_scenario(servers, faults, readers)
            expected = readers >= fast_read_bound(servers, faults)
            assert scenario.applicable == expected, (servers, faults, readers)

    def test_scenario_fields(self):
        scenario = build_fig9_scenario(6, 1, 4)
        assert scenario.witness_block == ("s1",)
        assert scenario.required_degree == 5
        assert scenario.pumping_readers == 3
        assert "R=4" in scenario.reason

    def test_scenario_requires_faults(self):
        with pytest.raises(ConfigurationError):
            build_fig9_scenario(5, 0, 2)


class TestFig9Experiment:
    def test_violation_above_bound(self):
        result = run_fig9_experiment(4, 1, 2)
        assert result.scenario.applicable
        assert result.violation_found
        assert not result.atomicity.atomic
        # The final reader returned the old (initial) value after another
        # reader had already returned the new one.
        values = dict(result.returned_values)
        assert values["r2"] is None
        assert any(v == "v-new" for v in values.values())

    def test_no_violation_below_bound(self):
        result = run_fig9_experiment(5, 1, 2)
        assert not result.scenario.applicable
        assert not result.violation_found

    def test_boundary_sweep_matches_theory(self):
        rows = boundary_sweep([(4, 1, 2), (5, 1, 2), (6, 1, 4), (7, 1, 3)])
        for (_, _, _), impossible, violated in rows:
            assert impossible == violated

    def test_histories_are_well_formed(self):
        result = run_fig9_experiment(6, 1, 3)
        assert result.history.is_well_formed()


class TestTable1:
    def test_theoretical_rows(self):
        params = SystemParameters(5, 2, 2, 1)
        rows = theoretical_table(params)
        by_point = {row.point: row for row in rows}
        assert by_point[DesignPoint.W2R2].feasible_here
        assert not by_point[DesignPoint.W1R2].feasible_here
        assert by_point[DesignPoint.W2R1].feasible_here
        assert not by_point[DesignPoint.W1R1].feasible_here
        assert by_point[DesignPoint.W1R2].source == "this paper"

    def test_theoretical_rows_infeasible_configuration(self):
        params = SystemParameters(4, 2, 2, 1)  # R >= S/t - 2
        rows = theoretical_table(params)
        by_point = {row.point: row for row in rows}
        assert not by_point[DesignPoint.W2R1].feasible_here

    def test_empirical_matches_theory(self):
        params = SystemParameters(5, 2, 2, 1)
        rows = empirical_table(params, seeds=(0,), bursts=2)
        assert len(rows) == 4
        for row in rows:
            assert row.matches_expectation, (row.point, row.violations)

    def test_format_table_renders(self):
        params = SystemParameters(5, 2, 2, 1)
        text = format_table(theoretical_table(params), empirical_table(params, seeds=(0,), bursts=2))
        assert "W2R1" in text and "fast-read-mwmr" in text
