"""Tests for the simulation runtime, client driver and failure injector."""

from __future__ import annotations

import pytest

from repro.consistency import check_atomicity
from repro.core.errors import ConfigurationError
from repro.core.operations import OpKind
from repro.protocols.registry import build_protocol
from repro.sim.delays import ConstantDelay
from repro.sim.failures import FailureInjector
from repro.sim.network import SkipRule
from repro.sim.runtime import Simulation
from repro.util.ids import server_ids
from repro.util.rng import SeededRng


def make_sim(protocol_key="abd-mwmr", servers=5, max_faults=1, **kwargs):
    protocol = build_protocol(
        protocol_key, server_ids(servers), max_faults, readers=2, writers=2, **kwargs
    )
    return Simulation(protocol, delay_model=ConstantDelay(1.0))


class TestBasicRuns:
    def test_single_write_and_read(self):
        sim = make_sim()
        sim.schedule_write("w1", "hello", at=1.0)
        sim.schedule_read("r1", at=10.0)
        result = sim.run()
        assert len(result.history) == 2
        read = result.history.reads[0]
        assert read.value == "hello"
        assert read.is_complete

    def test_round_trip_counts_recorded(self):
        sim = make_sim("abd-mwmr")
        sim.schedule_write("w1", "x", at=1.0)
        sim.schedule_read("r1", at=10.0)
        history = sim.run().history
        writes, reads = history.round_trip_counts()
        assert writes == [2] and reads == [2]

    def test_fast_read_uses_one_round_trip(self):
        sim = make_sim("fast-read-mwmr")
        sim.schedule_write("w1", "x", at=1.0)
        sim.schedule_read("r1", at=10.0)
        history = sim.run().history
        _, reads = history.round_trip_counts()
        assert reads == [1]

    def test_outcomes_captured(self):
        sim = make_sim()
        sim.schedule_write("w1", "x", at=1.0)
        result = sim.run()
        assert len(result.outcomes) == 1
        outcome = next(iter(result.outcomes.values()))
        assert outcome.kind is OpKind.WRITE

    def test_message_accounting(self):
        sim = make_sim(servers=5)
        sim.schedule_write("w1", "x", at=1.0)
        result = sim.run()
        # Two round-trips to 5 servers: 10 requests + 10 replies.
        assert result.messages_sent == 20

    def test_closed_loop_sequences(self):
        sim = make_sim("abd-mwmr")
        sim.schedule_closed_loop("w1", [("write", "a"), ("write", "b")], start_at=0.0)
        sim.schedule_closed_loop("r1", [("read",), ("read",)], start_at=1.0)
        history = sim.run().history
        assert len(history.by_client("w1")) == 2
        assert len(history.by_client("r1")) == 2
        assert history.is_well_formed()

    def test_closed_loop_rejects_unknown_spec(self):
        sim = make_sim()
        sim.schedule_closed_loop("w1", [("nonsense",)])
        with pytest.raises(Exception):
            sim.run()

    def test_unknown_client_rejected(self):
        sim = make_sim()
        with pytest.raises(KeyError):
            sim.client("nobody")


class TestBackPressure:
    def test_dense_invocations_stay_well_formed(self):
        # Two reads scheduled closer together than a read takes complete in
        # order thanks to the client's backlog queue.
        sim = make_sim("abd-mwmr")
        sim.schedule_write("w1", "x", at=0.0)
        sim.schedule_read("r1", at=10.0)
        sim.schedule_read("r1", at=10.1)
        history = sim.run().history
        assert history.is_well_formed()
        assert len(history.by_client("r1")) == 2
        assert all(op.is_complete for op in history.by_client("r1"))


class TestFaultInjection:
    def test_crash_within_budget_still_completes(self):
        sim = make_sim(servers=5, max_faults=1)
        sim.crash_server("s5", at=0.5)
        sim.schedule_write("w1", "x", at=1.0)
        sim.schedule_read("r1", at=10.0)
        result = sim.run()
        assert all(op.is_complete for op in result.history)
        assert result.crashed_servers == ["s5"]
        assert check_atomicity(result.history).atomic

    def test_crash_beyond_budget_rejected(self):
        sim = make_sim(servers=5, max_faults=1)
        sim.crash_server("s5", at=0.5)
        with pytest.raises(ConfigurationError):
            sim.crash_server("s4", at=0.6)

    def test_injector_random_crashes(self):
        sim = make_sim(servers=7, max_faults=2)
        plans = sim.failures.schedule_random_server_crashes(2, 10.0, SeededRng(1))
        assert len(plans) == 2
        sim.schedule_write("w1", "x", at=20.0)
        result = sim.run()
        assert len(result.crashed_servers) == 2
        assert result.history.writes[0].is_complete

    def test_injector_rejects_too_many_random_crashes(self):
        sim = make_sim(servers=5, max_faults=1)
        with pytest.raises(ConfigurationError):
            sim.failures.schedule_random_server_crashes(2, 10.0, SeededRng(1))

    def test_injector_validates_parameters(self):
        sim = make_sim(servers=5, max_faults=1)
        with pytest.raises(ConfigurationError):
            FailureInjector(sim.events, sim.network, server_ids(5), 5)

    def test_remaining_budget(self):
        sim = make_sim(servers=5, max_faults=1)
        assert sim.failures.remaining_fault_budget == 1
        sim.crash_server("s1", at=0.1)
        sim.schedule_write("w1", "x", at=1.0)
        sim.run()
        assert sim.failures.remaining_fault_budget == 0


class TestAdversaryControls:
    def test_skip_rule_on_operation(self):
        sim = make_sim("abd-mwmr", servers=5, max_faults=1)
        # The write's update round-trip never reaches s1; the protocol still
        # completes with the remaining four servers.
        sim.add_skip_rule(SkipRule(sender="w1", receiver="s1", kind="update"))
        sim.schedule_write("w1", "x", at=1.0)
        sim.schedule_read("r1", at=20.0)
        result = sim.run()
        read = result.history.reads[0]
        assert read.value == "x"
        assert check_atomicity(result.history).atomic

    def test_interceptor_reorders_messages(self):
        sim = make_sim("abd-mwmr")
        seen = []
        sim.set_interceptor(lambda m: seen.append(m.kind) or None)
        sim.schedule_write("w1", "x", at=1.0)
        sim.run()
        assert "query" in seen and "update" in seen

    def test_configuration_mismatch_detected(self):
        protocol = build_protocol("abd-mwmr", server_ids(5), 1)
        from repro.core.conditions import SystemParameters

        with pytest.raises(ConfigurationError):
            Simulation(protocol, params=SystemParameters(4, 2, 2, 1))
