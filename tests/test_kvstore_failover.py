"""Tests for resilient ingress: proxy failover + control-plane view push.

Covers the two halves of the fault-tolerant proxy tier on both backends:

* **Failover** -- a client whose ingress proxy dies mid-round re-dials
  another proxy of the same site (or falls back to direct replica
  connections when the site's list is exhausted) and replays its in-flight
  rounds under a fresh attempt scope, with per-key atomicity intact -- also
  concurrently with a live resize and replica crash injection.
* **View push** -- the control plane pushes ring/epoch deltas to the
  proxies at each rebalance, so a steady-state resize costs zero
  stale-epoch replays (the bounce fence stays on as the safety net).
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.kvstore import (
    AsyncKVCluster,
    KVStore,
    RetryPolicy,
    ShardMap,
    SimKVCluster,
    attempt_scoped_id,
    check_per_key_atomicity,
    generate_workload,
    parse_attempt_scoped_id,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)

#: Shrinks every reconnect/failover window so kill/restart scenarios settle
#: in well under a second instead of sleeping out the ~5 s default.
FAST_RETRY = RetryPolicy(
    reconnect_interval=0.02,
    max_transient_retries=50,
    round_timeout=1.0,
    max_round_timeouts=3,
)


class TestAttemptScopedIds:
    @settings(max_examples=80, deadline=None)
    @given(op_id=st.text(max_size=40), attempt=st.integers(0, 10**9))
    def test_round_trip(self, op_id, attempt):
        scoped = attempt_scoped_id(op_id, attempt)
        assert parse_attempt_scoped_id(scoped) == (op_id, attempt)

    @settings(max_examples=80, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.text(max_size=20), st.integers(0, 999)),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    def test_distinct_pairs_never_collide(self, pairs):
        scoped = [attempt_scoped_id(op_id, attempt) for op_id, attempt in pairs]
        assert len(set(scoped)) == len(pairs)

    def test_nested_scoping_parses_level_by_level(self):
        # The client scopes per failover generation, the proxy scopes the
        # result again per replay attempt; each level must peel off exactly.
        once = attempt_scoped_id("c1-read-7", 3)
        twice = attempt_scoped_id(once, 5)
        assert parse_attempt_scoped_id(twice) == (once, 5)
        assert parse_attempt_scoped_id(once) == ("c1-read-7", 3)

    def test_separator_in_op_id_stays_unambiguous(self):
        # An op id that *looks* already scoped must not be confused with a
        # genuinely nested scope of its prefix.
        assert attempt_scoped_id("op@a1", 2) != "op@a1@a2"
        assert parse_attempt_scoped_id(attempt_scoped_id("op@a1", 2)) == ("op@a1", 2)
        assert parse_attempt_scoped_id(attempt_scoped_id("%40@a", 0)) == ("%40@a", 0)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_attempt_scoped_id("no-separator")
        with pytest.raises(ValueError):
            parse_attempt_scoped_id("op@anan")
        with pytest.raises(ValueError):
            attempt_scoped_id("op", -1)


def _manual_sim_ops(cluster: SimKVCluster, plan):
    """Issue ``(client_id, kind, key, value)`` ops closed-loop per client."""
    by_client = {}
    for client_id, kind, key, value in plan:
        by_client.setdefault(client_id, []).append((kind, key, value))

    def make_issuer(client, remaining):
        def issue_next(_outcome=None):
            if not remaining:
                return
            kind, key, value = remaining.pop(0)
            if kind == "put":
                client.put(key, value, on_complete=issue_next)
            else:
                client.get(key, on_complete=issue_next)

        return issue_next

    for client_id, remaining in by_client.items():
        issuer = make_issuer(cluster.clients[client_id], remaining)
        cluster.events.schedule(0.0, issuer, label=f"start:{client_id}")


class TestSimProxyFailover:
    def test_workload_survives_proxy_kill_mid_run(self):
        workload = generate_workload(num_clients=4, ops_per_client=12,
                                     num_keys=16, seed=3, pipeline_depth=4)
        result = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2, kill_proxy_after_ops=10,
        )
        # Zero client-visible errors: every scheduled op completed.
        assert result.completed_ops == workload.total_operations()
        assert result.proxy_kill is not None
        assert result.proxy_kill["killed"] == ["p1"]
        assert result.proxy_failovers >= 1
        verdict = check_per_key_atomicity(result.histories)
        assert verdict.all_atomic, verdict.summary()

    def test_exhausted_proxy_list_falls_back_to_direct(self):
        shard_map = ShardMap(2, num_groups=2, readers=2, writers=2)
        cluster = SimKVCluster(shard_map, ["c1", "c2"], num_proxies=1,
                               proxy_timeout=30.0)
        plan = []
        for i in range(8):
            plan.append(("c1", "put", f"k{i % 3}", f"a{i}"))
            plan.append(("c2", "put", f"k{i % 3}", f"b{i}"))
            plan.append(("c1", "get", f"k{i % 3}", None))
        _manual_sim_ops(cluster, plan)
        cluster.schedule_proxy_crash("p1", at=5.0)
        cluster.run()
        assert cluster.recorder.completed_operations == len(plan)
        # The only proxy of the site is dead: both clients went direct.
        for client in cluster.clients.values():
            assert client.proxy_id is None
            assert client.proxy_failovers >= 1
        verdict = check_per_key_atomicity(cluster.recorder.histories())
        assert verdict.all_atomic, verdict.summary()

    def test_failover_stays_within_the_site(self):
        shard_map = ShardMap(2, num_groups=2, readers=2, writers=2)
        sites = {"c1": "us", "c2": "eu", "p1": "us", "p2": "us", "p3": "eu"}
        cluster = SimKVCluster(shard_map, ["c1", "c2"], num_proxies=3,
                               sites=sites, proxy_timeout=30.0)
        assert cluster.clients["c1"].proxy_id in ("p1", "p2")
        assert cluster.clients["c2"].proxy_id == "p3"
        plan = [("c1", "put", f"u{i}", f"v{i}") for i in range(10)]
        plan += [("c2", "put", f"e{i}", f"w{i}") for i in range(10)]
        _manual_sim_ops(cluster, plan)
        # Kill every client's current proxy mid-run.
        cluster.schedule_proxy_crash(cluster.clients["c1"].proxy_id, at=4.0)
        cluster.schedule_proxy_crash("p3", at=4.0)
        cluster.run()
        assert cluster.recorder.completed_operations == len(plan)
        # c1 re-dialed the us sibling; c2's site was exhausted -> direct.
        assert cluster.clients["c1"].proxy_id in ("p1", "p2")
        assert cluster.clients["c1"].proxy_id not in cluster.crashed_proxies
        assert cluster.clients["c2"].proxy_id is None
        verdict = check_per_key_atomicity(cluster.recorder.histories())
        assert verdict.all_atomic, verdict.summary()

    def test_failover_concurrent_with_resize_and_replica_crashes(self):
        workload = generate_workload(num_clients=4, ops_per_client=15,
                                     num_keys=16, seed=8, pipeline_depth=4)
        result = run_sim_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2,
            resize_to=8, crashes_per_group=1,
            kill_proxy_after_ops=20,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.resize is not None and result.resize["to"] == 8
        assert result.proxy_failovers >= 1
        verdict = check_per_key_atomicity(result.histories)
        assert verdict.all_atomic, verdict.summary()


class TestSimViewPush:
    def _two_phase(self, push_views: bool):
        """Ops, quiesce, live resize, more ops -- steady-state staleness."""
        shard_map = ShardMap(4, num_groups=2, readers=2, writers=2)
        cluster = SimKVCluster(shard_map, ["c1", "c2"], num_proxies=2,
                               push_views=push_views)
        phase1 = [("c1", "put", f"k{i}", f"v{i}") for i in range(6)]
        phase1 += [("c2", "put", f"q{i}", f"w{i}") for i in range(6)]
        _manual_sim_ops(cluster, phase1)
        cluster.run()
        cluster.resize(8)
        phase2 = [("c1", "get", f"k{i}", None) for i in range(6)]
        phase2 += [("c2", "get", f"q{i}", None) for i in range(6)]
        _manual_sim_ops(cluster, phase2)
        cluster.run()
        assert cluster.recorder.completed_operations == len(phase1) + len(phase2)
        verdict = check_per_key_atomicity(cluster.recorder.histories())
        assert verdict.all_atomic, verdict.summary()
        return cluster

    def test_push_makes_a_steady_state_resize_bounce_free(self):
        cluster = self._two_phase(push_views=True)
        assert cluster.view_pushes_sent == 2
        assert cluster.view_pushes_applied() == 2
        assert cluster.stale_replays() == 0

    def test_without_push_the_bounce_safety_net_pays_per_proxy(self):
        cluster = self._two_phase(push_views=False)
        assert cluster.view_pushes_applied() == 0
        assert cluster.stale_replays() >= 1

    def test_crashed_proxy_misses_the_push_harmlessly(self):
        shard_map = ShardMap(2, num_groups=2, readers=2, writers=2)
        cluster = SimKVCluster(shard_map, ["c1"], num_proxies=2,
                               proxy_timeout=30.0)
        cluster.crash_proxy("p2")
        cluster.resize(4)
        cluster.run()
        assert cluster.proxies["p1"].view.pushes_applied == 1
        assert cluster.proxies["p2"].view.pushes_applied == 0


class TestAsyncioProxyFailover:
    def test_store_fails_over_to_site_sibling_mid_round(self):
        async def scenario():
            shard_map = ShardMap(4, num_groups=2, readers=2, writers=2)
            cluster = AsyncKVCluster(shard_map, retry_policy=FAST_RETRY)
            await cluster.start()
            await cluster.start_proxies(2)
            store = KVStore(cluster, client_id="c1", use_proxy="p1")
            await store.connect()
            try:
                async def hammer(tag: str) -> None:
                    for i in range(6):
                        await store.put(f"k{i % 3}", f"{tag}-{i}")
                        assert await store.get(f"k{i % 3}") == f"{tag}-{i}"

                await hammer("before")
                # Kill the proxy with operations in flight.
                killer = asyncio.create_task(cluster.kill_proxy("p1"))
                await hammer("during")
                await killer
                await hammer("after")
                assert store.proxy_failovers == 1
                assert store._proxy_client is not None
                assert store._proxy_client.proxy_id == "p2"
                verdict = store.check()
                assert verdict.all_atomic, verdict.summary()
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_exhausted_site_falls_back_to_direct_connections(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(2, num_groups=2),
                                     retry_policy=FAST_RETRY)
            await cluster.start()
            await cluster.start_proxies(1)
            store = KVStore(cluster, client_id="c1", use_proxy=True)
            await store.connect()
            try:
                await store.put("k", "v1")
                await cluster.kill_proxy("p1")
                await store.put("k", "v2")
                assert await store.get("k") == "v2"
                assert store.proxy_failovers == 1
                assert store._proxy_client is None
                assert store._group_clients  # direct replica connections
                verdict = store.check()
                assert verdict.all_atomic, verdict.summary()
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_direct_fallback_with_a_replica_down_does_not_wedge(self):
        # The nasty coincidence failover exists for: the site's last proxy
        # dies while a replica is ALSO down.  The fallback's direct dials
        # must ride out the dead replica (quorums of S - t survive) instead
        # of erroring the client or wedging the store half-connected.
        async def scenario():
            shard_map = ShardMap(2, num_groups=2, readers=2, writers=2)
            cluster = AsyncKVCluster(shard_map, retry_policy=FAST_RETRY)
            await cluster.start()
            await cluster.start_proxies(1)
            store = KVStore(cluster, client_id="c1", use_proxy=True)
            await store.connect()
            try:
                await store.put("k", "v1")
                victim = shard_map.groups["g1"].servers[0]
                await cluster.kill_server(victim)
                await cluster.kill_proxy("p1")
                for i in range(4):
                    await store.put(f"k{i}", f"v{i}")
                    assert await store.get(f"k{i}") == f"v{i}"
                assert store.proxy_failovers == 1
                assert store._proxy_client is None
                # Fully connected direct: one group client per group.
                assert set(store._group_clients) == set(shard_map.groups)
                verdict = store.check()
                assert verdict.all_atomic, verdict.summary()
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_kill_and_restart_proxy_rebinds_the_same_endpoint(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(2), retry_policy=FAST_RETRY)
            await cluster.start()
            await cluster.start_proxies(1)
            endpoint = cluster.proxy_endpoint("p1")
            await cluster.kill_proxy("p1")
            assert not cluster.proxies["p1"].running
            await cluster.restart_proxy("p1")
            assert cluster.proxies["p1"].running
            assert cluster.proxy_endpoint("p1") == endpoint
            # A fresh store connects to the restarted proxy and operates.
            store = KVStore(cluster, client_id="c1", use_proxy="p1")
            await store.connect()
            try:
                await store.put("k", "v")
                assert await store.get("k") == "v"
            finally:
                await store.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_candidates_are_scoped_per_site(self):
        async def scenario():
            cluster = AsyncKVCluster(ShardMap(1))
            await cluster.start()
            us = await cluster.start_proxies(2, site="us")
            eu = await cluster.start_proxies(1, site="eu")
            assert us == ["p1", "p2"] and eu == ["p3"]
            assert cluster.proxy_candidates("p2") == ["p2", "p1"]
            assert cluster.proxy_candidates("p3") == ["p3"]
            await cluster.stop()

        asyncio.run(scenario())

    def test_workload_runner_survives_a_proxy_kill(self):
        workload = generate_workload(num_clients=3, ops_per_client=10,
                                     num_keys=12, seed=6, pipeline_depth=4)
        result = run_asyncio_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2,
            kill_proxy_after_ops=10, retry_policy=FAST_RETRY,
        )
        assert result.completed_ops == workload.total_operations()
        assert result.proxy_kill is not None and result.proxy_kill["killed"]
        assert result.proxy_failovers >= 1
        verdict = check_per_key_atomicity(result.histories)
        assert verdict.all_atomic, verdict.summary()


class TestAsyncioViewPush:
    def _two_phase(self, push_views: bool):
        async def scenario():
            shard_map = ShardMap(4, num_groups=2, readers=2, writers=2)
            cluster = AsyncKVCluster(shard_map, retry_policy=FAST_RETRY,
                                     push_views=push_views)
            await cluster.start()
            await cluster.start_proxies(2)
            stores = []
            try:
                for index in range(2):
                    store = KVStore(cluster, client_id=f"c{index + 1}",
                                    use_proxy=True)
                    await store.connect()
                    stores.append(store)
                for i in range(6):
                    await stores[i % 2].put(f"k{i}", f"v{i}")
                cluster.resize(8)
                await cluster.flush_view_pushes()
                for i in range(6):
                    assert await stores[i % 2].get(f"k{i}") == f"v{i}"
                stale = sum(p.stale_replays for p in cluster.proxies.values())
                pushes = sum(p.view.pushes_applied
                             for p in cluster.proxies.values())
                for store in stores:
                    verdict = store.check()
                    assert verdict.all_atomic, verdict.summary()
                return stale, pushes
            finally:
                for store in stores:
                    await store.close()
                await cluster.stop()

        return asyncio.run(scenario())

    def test_push_makes_a_steady_state_resize_replay_free(self):
        stale, pushes = self._two_phase(push_views=True)
        assert pushes == 2
        assert stale == 0

    def test_without_push_stale_bounces_do_the_refresh(self):
        stale, pushes = self._two_phase(push_views=False)
        assert pushes == 0
        assert stale >= 1
