"""Setup shim.

The project is configured via ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools/pip cannot
build PEP 660 editable wheels (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
